#include "rtl/wave.h"

#include <sstream>
#include <stdexcept>

namespace anvil {
namespace rtl {

WaveRecorder::WaveRecorder(Sim &sim, std::vector<std::string> signals)
    : _sim(sim), _samples(signals.size())
{
    const Netlist &nl = sim.netlist();
    _net_slot.assign(nl.nets().size(), -1);
    for (auto &name : signals) {
        Rec r;
        r.name = std::move(name);
        std::string flat = nl.resolveName("", r.name);
        auto it = nl.signals().find(flat);
        if (it != nl.signals().end()) {
            r.net = it->second.net;
            // Lazy nets are re-read directly every visit so their
            // on-demand faults still fire; duplicate traces of one
            // net chain off its single slot entry.
            if (!nl.net(r.net).lazy) {
                size_t ni = static_cast<size_t>(r.net);
                r.dup_next = _net_slot[ni];
                _net_slot[ni] = static_cast<int32_t>(_recs.size());
                r.fed = true;
            }
        }
        _recs.push_back(std::move(r));
    }
}

WaveRecorder::~WaveRecorder() = default;

void
WaveRecorder::onAttach(obs::ChangeFeed &feed)
{
    for (const Rec &r : _recs)
        if (r.fed)
            feed.subscribe(*this, r.net);
}

void
WaveRecorder::directRead(Rec &r)
{
    // Unresolved names keep peek()'s error; resolved ones read the
    // interned value (identical result, no name lookup).
    r.last = r.net == kNoNet ? _sim.peek(r.name) : _sim.value(r.net);
}

void
WaveRecorder::commitRow()
{
    for (size_t i = 0; i < _recs.size(); i++)
        _samples[i].push_back(_recs[i].last);
}

void
WaveRecorder::onPrime(Sim &sim, uint64_t cycle)
{
    (void)sim;
    (void)cycle;
    for (auto &r : _recs)
        directRead(r);
    commitRow();
}

void
WaveRecorder::onCycle(Sim &sim, uint64_t cycle,
                      const std::vector<NetId> &changed)
{
    (void)sim;
    (void)cycle;
    for (NetId id : changed)
        for (int32_t slot = _net_slot[static_cast<size_t>(id)];
             slot >= 0;
             slot = _recs[static_cast<size_t>(slot)].dup_next)
            _recs[static_cast<size_t>(slot)].last = _sim.value(id);
    for (auto &r : _recs)
        if (!r.fed)
            directRead(r);
    commitRow();
}

void
WaveRecorder::sample()
{
    if (!_own_feed) {
        if (feed())
            throw std::logic_error(
                "WaveRecorder::sample(): attached to an external "
                "ChangeFeed; drive that feed instead");
        _own_feed = std::make_unique<obs::ChangeFeed>(_sim);
        _own_feed->attach(*this);
    }
    _own_feed->sample();
}

const std::vector<BitVec> &
WaveRecorder::samplesOf(const std::string &sig) const
{
    for (size_t i = 0; i < _recs.size(); i++)
        if (_recs[i].name == sig)
            return _samples[i];
    throw std::invalid_argument("signal not recorded: " + sig);
}

std::string
WaveRecorder::render() const
{
    std::ostringstream os;
    size_t name_w = 4;
    for (const auto &r : _recs)
        name_w = std::max(name_w, r.name.size());

    size_t cycles = _samples.empty() ? 0 : _samples[0].size();
    os << std::string(name_w, ' ') << " |";
    for (size_t c = 0; c < cycles; c++) {
        std::string h = std::to_string(c);
        os << " " << h << std::string(h.size() < 6 ? 6 - h.size() : 0,
                                      ' ');
    }
    os << "\n";

    for (size_t i = 0; i < _recs.size(); i++) {
        os << _recs[i].name
           << std::string(name_w - _recs[i].name.size(), ' ') << " |";
        for (const auto &v : _samples[i]) {
            std::string h;
            if (v.width() == 1) {
                h = v.any() ? "1" : "0";
            } else {
                h = v.toHex();
            }
            if (h.size() < 6)
                h += std::string(6 - h.size(), ' ');
            os << " " << h;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace rtl
} // namespace anvil
