#include "rtl/ref_interp.h"

#include "rtl/interp.h"

#include <stdexcept>

#include "support/strings.h"

namespace anvil {
namespace rtl {

RefSim::RefSim(std::shared_ptr<const Module> top)
    : _top(std::move(top))
{
    flatten(*_top, "");
}

void
RefSim::flatten(const Module &m, const std::string &prefix)
{
    for (const auto &p : m.ports) {
        if (p.is_input && prefix.empty()) {
            Signal s;
            s.kind = Signal::Kind::Input;
            s.width = p.width;
            s.value = BitVec(p.width);
            _signals[p.name] = std::move(s);
        }
        // Non-top input ports become wires during instance wiring;
        // output ports resolve to the same-named wire/reg.
    }
    for (const auto &r : m.regs) {
        Signal s;
        s.kind = Signal::Kind::Reg;
        s.width = r.width;
        s.value = r.init;
        s.next = r.init;
        _signals[prefix + r.name] = std::move(s);
    }
    for (const auto &w : m.wires) {
        Signal s;
        s.kind = Signal::Kind::Wire;
        s.width = w.width;
        s.expr = w.expr;
        s.scope = prefix;
        _signals[prefix + w.name] = std::move(s);
    }
    for (const auto &u : m.updates)
        _updates.push_back({prefix + u.reg, u.enable, u.value, prefix});
    for (const auto &pr : m.prints)
        _prints.push_back({pr.enable, pr.text, pr.value, prefix});

    for (const auto &inst : m.instances) {
        std::string child_prefix = prefix + inst.name + ".";
        flatten(*inst.module, child_prefix);
        // Child inputs: wires in the child scope, driven by parent
        // expressions evaluated in the parent scope.
        for (const auto &[port, expr] : inst.inputs) {
            const Port *p = inst.module->findPort(port);
            int w = p ? p->width : expr->width;
            Signal s;
            s.kind = Signal::Kind::Wire;
            s.width = w;
            s.expr = expr;
            s.scope = prefix;   // resolve in the parent scope
            _signals[child_prefix + port] = std::move(s);
        }
        // Child outputs: alias parent names to child signals.
        for (const auto &[parent_wire, child_port] : inst.outputs)
            _aliases[prefix + parent_wire] = child_prefix + child_port;
    }
}

std::string
RefSim::resolveName(const std::string &scope, const std::string &name) const
{
    std::string flat = scope + name;
    auto it = _aliases.find(flat);
    while (it != _aliases.end()) {
        flat = it->second;
        it = _aliases.find(flat);
    }
    return flat;
}

void
RefSim::setInput(const std::string &name, const BitVec &v)
{
    auto it = _signals.find(name);
    if (it == _signals.end() || it->second.kind != Signal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    it->second.value = v.resize(it->second.width);
    _gen++;
}

void
RefSim::setInput(const std::string &name, uint64_t v)
{
    auto it = _signals.find(name);
    if (it == _signals.end() || it->second.kind != Signal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    it->second.value = BitVec(it->second.width, v);
    _gen++;
}

BitVec
RefSim::evalSignal(const std::string &flat)
{
    auto it = _signals.find(flat);
    if (it == _signals.end())
        throw std::invalid_argument("no such signal: " + flat);
    Signal &s = it->second;
    if (s.kind != Signal::Kind::Wire)
        return s.value;
    if (s.eval_cycle == _cycle && s.eval_gen == _gen)
        return s.cached;
    if (s.visiting)
        throw std::runtime_error("combinational loop through " + flat);
    s.visiting = true;
    BitVec v = eval(s.expr, s.scope).resize(s.width);
    s.visiting = false;
    s.eval_cycle = _cycle;
    s.eval_gen = _gen;
    s.cached = v;
    return v;
}

BitVec
RefSim::eval(const ExprPtr &e, const std::string &scope)
{
    switch (e->kind) {
      case Expr::Kind::Const:
        return e->value;
      case Expr::Kind::Ref:
        return evalSignal(resolveName(scope, e->name)).resize(e->width);
      case Expr::Kind::Unop:
        return applyUnop(e->op, eval(e->args[0], scope));
      case Expr::Kind::Binop:
        return applyBinop(e->op, eval(e->args[0], scope),
                          eval(e->args[1], scope), e->width);
      case Expr::Kind::Mux:
        return eval(e->args[0], scope).any()
            ? eval(e->args[1], scope).resize(e->width)
            : eval(e->args[2], scope).resize(e->width);
      case Expr::Kind::Slice:
        return eval(e->args[0], scope).slice(e->lo, e->width);
      case Expr::Kind::Concat: {
        BitVec acc(1);
        bool first = true;
        // args are hi-first; build from the low end.
        for (auto it = e->args.rbegin(); it != e->args.rend(); ++it) {
            BitVec part = eval(*it, scope);
            if (first) {
                acc = part;
                first = false;
            } else {
                acc = acc.concatHigh(part);
            }
        }
        return acc.resize(e->width);
      }
      case Expr::Kind::Rom: {
        uint64_t addr = eval(e->args[0], scope).toUint64();
        if (addr >= e->rom->size())
            return BitVec(e->width);
        return (*e->rom)[addr].resize(e->width);
      }
    }
    throw std::logic_error("bad expr kind");
}

BitVec
RefSim::peek(const std::string &name)
{
    return evalSignal(resolveName("", name));
}

void
RefSim::evalAll()
{
    for (auto &[name, s] : _signals) {
        if (s.kind != Signal::Kind::Wire)
            continue;
        BitVec v = evalSignal(name);
        // Toggle accounting against the previous cycle's value.
        if (s.last_cycle_val_cycle != UINT64_MAX) {
            BitVec diff = v ^ s.last_cycle_val.resize(v.width());
            _total_toggles += diff.popcount();
        }
        s.last_cycle_val = v;
        s.last_cycle_val_cycle = _cycle;
    }
}

void
RefSim::step(int n)
{
    for (int i = 0; i < n; i++) {
        evalAll();

        // Compute next-state for all registers.
        for (auto &[name, s] : _signals) {
            if (s.kind == Signal::Kind::Reg)
                s.next = s.value;
        }
        for (const auto &u : _updates) {
            if (eval(u.enable, u.scope).any()) {
                auto it = _signals.find(u.reg);
                if (it == _signals.end())
                    throw std::invalid_argument("update of unknown reg: "
                                                + u.reg);
                it->second.next =
                    eval(u.value, u.scope).resize(it->second.width);
            }
        }
        for (const auto &p : _prints) {
            if (eval(p.enable, p.scope).any()) {
                std::string line = p.text;
                if (p.value)
                    line += " " + eval(p.value, p.scope).toHex();
                _log.push_back(line);
            }
        }

        // Clock edge: commit and count register toggles.
        for (auto &[name, s] : _signals) {
            if (s.kind == Signal::Kind::Reg) {
                BitVec diff = s.next ^ s.value;
                _total_toggles += diff.popcount();
                s.value = s.next;
            }
        }
        _cycle++;
    }
}

int
RefSim::stateBits() const
{
    int bits = 0;
    for (const auto &[name, s] : _signals)
        if (s.kind == Signal::Kind::Reg)
            bits += s.width;
    return bits;
}

std::vector<std::string>
RefSim::regNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, s] : _signals)
        if (s.kind == Signal::Kind::Reg)
            out.push_back(name);
    return out;
}

BitVec
RefSim::regValue(const std::string &flat_name) const
{
    auto it = _signals.find(flat_name);
    if (it == _signals.end() || it->second.kind != Signal::Kind::Reg)
        throw std::invalid_argument("no such register: " + flat_name);
    return it->second.value;
}

void
RefSim::setRegValue(const std::string &flat_name, const BitVec &v)
{
    auto it = _signals.find(flat_name);
    if (it == _signals.end() || it->second.kind != Signal::Kind::Reg)
        throw std::invalid_argument("no such register: " + flat_name);
    it->second.value = v.resize(it->second.width);
    _gen++;
}

std::vector<std::string>
RefSim::inputNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, s] : _signals)
        if (s.kind == Signal::Kind::Input)
            out.push_back(name);
    return out;
}

BitVec
RefSim::evalTop(const ExprPtr &e)
{
    return eval(e, "");
}

} // namespace rtl
} // namespace anvil
