/**
 * @file
 * Standard VCD (IEEE 1364 value change dump) writer for the compiled
 * simulator, replacing ad-hoc ASCII-only tracing for anything a real
 * waveform viewer should open.
 *
 * Signals are taken straight from the interned netlist table: each
 * traced signal maps its NetId to a compact printable id-code, the
 * dotted instance path becomes the VCD scope hierarchy, and each
 * sample emits value changes only for nets that differ from the
 * previous sample.  The output is fully deterministic (no wall-clock
 * date stamp), so emitted files can be compared against checked-in
 * goldens.
 */

#ifndef ANVIL_RTL_VCD_H
#define ANVIL_RTL_VCD_H

#include <ostream>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace rtl {

/**
 * Streams a VCD dump of a simulation.
 *
 * The header (scopes and $var declarations) is written at
 * construction; call sample() once per cycle *before* step() so the
 * timestamp matches Sim::cycle().  The first sample emits a full
 * $dumpvars checkpoint; later samples emit only changed nets.
 */
class VcdWriter
{
  public:
    /**
     * Trace the given signals (flat dotted names; child-output
     * aliases are resolved).  An empty list traces every named
     * signal in the netlist.
     */
    VcdWriter(Sim &sim, std::ostream &os,
              std::vector<std::string> signals = {});

    /** Dump changes at timestamp Sim::cycle(). */
    void sample();

    /** Number of value-change lines written so far. */
    uint64_t changesWritten() const { return _changes; }

    /** Printable VCD id-code for the i-th traced signal. */
    static std::string idCode(size_t index);

  private:
    struct Traced
    {
        std::string name;   // flat dotted name
        std::string id;     // VCD id-code
        NetId net;
        int width;
        bool is_reg;
        BitVec last{1};
    };

    void writeHeader();
    void emitValue(const Traced &t, const BitVec &v);

    Sim &_sim;
    std::ostream &_os;
    std::vector<Traced> _traced;
    bool _primed = false;
    uint64_t _changes = 0;
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_VCD_H
