/**
 * @file
 * Standard VCD (IEEE 1364 value change dump) writer for the compiled
 * simulator, replacing ad-hoc ASCII-only tracing for anything a real
 * waveform viewer should open.
 *
 * Signals are taken straight from the interned netlist table: each
 * traced signal maps its NetId to a compact printable id-code, the
 * dotted instance path becomes the VCD scope hierarchy, and each
 * sample emits value changes only for nets that differ from the
 * previous sample.  The output is fully deterministic (no wall-clock
 * date stamp), so emitted files can be compared against checked-in
 * goldens.
 *
 * Sampling rides the unified obs::ChangeFeed: after the first full
 * checkpoint, a visit receives only this writer's changed subscribed
 * nets instead of rescanning every traced net, so the cost per cycle
 * is proportional to activity.  Lazy nets (cyclic or ad-hoc cones)
 * are re-read every visit, preserving their on-demand fault
 * semantics; priming and the rescan fallback for skipped cycles or
 * late pokes are the feed's job — the emitted bytes are identical on
 * either path.  Duplicate traces of one net (an alias next to its
 * flat name) are chained off a single subscription, so they ride the
 * fast path too.
 */

#ifndef ANVIL_RTL_VCD_H
#define ANVIL_RTL_VCD_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "rtl/interp.h"

namespace anvil {
namespace rtl {

/**
 * One declared VCD variable.  The shared currency between the live
 * VcdWriter below and any other emitter that must produce
 * byte-compatible dumps (obs::FlightRecorder reconstructs trigger
 * windows through these same helpers).
 */
struct VcdVarDecl
{
    std::string name;   // flat dotted instance path
    std::string id;     // printable VCD id-code
    int width = 1;
    bool is_reg = false;
};

/**
 * Emit the deterministic VCD header: fixed date/version/timescale
 * text, the scope tree derived from the vars' dotted names rooted at
 * `top_scope`, and one $var per entry.  Exactly the bytes VcdWriter
 * writes at construction.
 */
void writeVcdHeader(std::ostream &os, const std::string &top_scope,
                    const std::vector<VcdVarDecl> &vars);

/**
 * Emit one value-change line: `0id`/`1id` for 1-bit vars, else
 * `b<binary, leading zeros trimmed> id`.
 */
void writeVcdValue(std::ostream &os, const std::string &id, int width,
                   const BitVec &v);

/**
 * Streams a VCD dump of a simulation.
 *
 * The header (scopes and $var declarations) is written at
 * construction.  Attach to a shared obs::ChangeFeed (the Testbench
 * does this), or call sample() once per cycle *before* step() for
 * standalone use — the first visit emits a full $dumpvars
 * checkpoint; later visits emit only changed nets.
 */
class VcdWriter : public obs::Observer
{
  public:
    /**
     * Trace the given signals (flat dotted names; child-output
     * aliases are resolved).  An empty list traces every named
     * signal in the netlist.
     */
    VcdWriter(Sim &sim, std::ostream &os,
              std::vector<std::string> signals = {});
    ~VcdWriter() override;

    /**
     * Standalone sampling: dump changes at timestamp Sim::cycle()
     * through a private single-observer feed.  Not available once
     * attached to an external ChangeFeed — drive that feed instead.
     */
    void sample();

    /** Number of value-change lines written so far. */
    uint64_t changesWritten() const { return _changes; }

    /** Printable VCD id-code for the i-th traced signal. */
    static std::string idCode(size_t index);

    // obs::Observer
    void onAttach(obs::ChangeFeed &feed) override;
    void onPrime(Sim &sim, uint64_t cycle) override;
    void onCycle(Sim &sim, uint64_t cycle,
                 const std::vector<NetId> &changed) override;
    const char *observerName() const override { return "vcd"; }

  private:
    struct Traced
    {
        std::string name;   // flat dotted name
        std::string id;     // VCD id-code
        NetId net;
        int width;
        bool is_reg;
        /** Rides the change feed; false for lazy nets, which are
         *  re-read every visit. */
        bool fed;
        /** Next traced slot sharing this net, or -1: duplicate
         *  traces chain off the net's single subscription. */
        int32_t dup_next = -1;
        BitVec last{1};
    };

    void writeHeader();
    void emitValue(const Traced &t, const BitVec &v);
    void sampleTraced(Traced &t, bool &stamped);

    Sim &_sim;
    std::ostream &_os;
    std::vector<Traced> _traced;
    std::vector<int32_t> _net_slot;   // net -> first traced slot or -1
    std::vector<size_t> _scratch;     // changed traced indices
    bool _primed = false;
    uint64_t _changes = 0;
    std::unique_ptr<obs::ChangeFeed> _own_feed;   // standalone mode
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_VCD_H
