/**
 * @file
 * Standard VCD (IEEE 1364 value change dump) writer for the compiled
 * simulator, replacing ad-hoc ASCII-only tracing for anything a real
 * waveform viewer should open.
 *
 * Signals are taken straight from the interned netlist table: each
 * traced signal maps its NetId to a compact printable id-code, the
 * dotted instance path becomes the VCD scope hierarchy, and each
 * sample emits value changes only for nets that differ from the
 * previous sample.  The output is fully deterministic (no wall-clock
 * date stamp), so emitted files can be compared against checked-in
 * goldens.
 *
 * Sampling is change-fed: after the first full checkpoint, a sample
 * visits only the simulator's per-cycle changed-net list
 * (Sim::changedNets) instead of rescanning every traced net, so the
 * cost per cycle is proportional to activity.  Lazy nets (cyclic or
 * ad-hoc cones) are re-read every sample, preserving their on-demand
 * fault semantics, and a sample that does not line up with the
 * change feed (first sample, skipped cycles) falls back to the full
 * scan — the emitted bytes are identical either way.
 */

#ifndef ANVIL_RTL_VCD_H
#define ANVIL_RTL_VCD_H

#include <ostream>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace rtl {

/**
 * Streams a VCD dump of a simulation.
 *
 * The header (scopes and $var declarations) is written at
 * construction; call sample() once per cycle *before* step() so the
 * timestamp matches Sim::cycle().  The first sample emits a full
 * $dumpvars checkpoint; later samples emit only changed nets.
 */
class VcdWriter
{
  public:
    /**
     * Trace the given signals (flat dotted names; child-output
     * aliases are resolved).  An empty list traces every named
     * signal in the netlist.
     */
    VcdWriter(Sim &sim, std::ostream &os,
              std::vector<std::string> signals = {});

    /** Dump changes at timestamp Sim::cycle(). */
    void sample();

    /** Number of value-change lines written so far. */
    uint64_t changesWritten() const { return _changes; }

    /** Printable VCD id-code for the i-th traced signal. */
    static std::string idCode(size_t index);

  private:
    struct Traced
    {
        std::string name;   // flat dotted name
        std::string id;     // VCD id-code
        NetId net;
        int width;
        bool is_reg;
        /** Covered by the change feed; false for lazy nets and for
         *  duplicate traces of an already-fed net (both re-read
         *  every sample). */
        bool fed;
        BitVec last{1};
    };

    void writeHeader();
    void emitValue(const Traced &t, const BitVec &v);
    void sampleTraced(Traced &t, bool &stamped);

    Sim &_sim;
    std::ostream &_os;
    std::vector<Traced> _traced;
    std::vector<int32_t> _net_slot;   // net -> traced index or -1
    std::vector<size_t> _scratch;     // changed traced indices
    bool _primed = false;
    ChangeFeedCursor _cursor;         // feed-freshness tracking
    uint64_t _changes = 0;
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_VCD_H
