/**
 * @file
 * Compiled netlist: the flat, index-addressed form of a module
 * hierarchy that the simulator executes.
 *
 * At construction the hierarchy is flattened once, every named signal
 * (top-level input, register, wire, child port wire) is interned into
 * a dense table addressed by an integer NetId, and every expression
 * DAG is rewritten into compact nodes whose operands are NetIds — no
 * strings, maps, or shared_ptr chasing remain on the evaluation path.
 * Combinational nodes are then levelized (topologically sorted with a
 * per-node logic level) so a simulation step is a dense per-level
 * sweep over index arrays.
 *
 * Structural cycles and unresolved references cannot always be
 * rejected eagerly: the reference interpreter only faults when an
 * evaluation actually reaches them (a loop hidden behind an untaken
 * mux branch is legal).  Nodes on or downstream of a cycle or a bad
 * reference are therefore marked `lazy` and evaluated by a recursive
 * short-circuiting walk that reproduces the reference semantics
 * exactly, including "combinational loop through <name>" faults.
 */

#ifndef ANVIL_RTL_NETLIST_H
#define ANVIL_RTL_NETLIST_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rtl/rtl.h"

namespace anvil {
namespace rtl {

/** Interned index of a signal or expression node in the netlist. */
using NetId = int32_t;

constexpr NetId kNoNet = -1;

/** One compiled node.  Sources hold state; the rest compute. */
struct Net
{
    enum class Kind : uint8_t
    {
        Const,   // value fixed at compile time
        Input,   // top-level input (poked by the driver)
        Reg,     // register (committed on the clock edge)
        Copy,    // operand a, resized to this node's width
        Unop,    // op(a)
        Binop,   // op(a, b) at this node's width
        Mux,     // a ? b : c, resized to this node's width
        Slice,   // a[lo +: width]
        Concat,  // cargs, hi-first, resized to this node's width
        Rom,     // rom[a], resized; out-of-range reads zero
        BadRef,  // unresolved name; faults only if evaluated
    };

    Kind kind = Kind::Const;
    Op op = Op::And;
    /** Evaluated in the u64 lane (width and operands fit a word). */
    bool fast = false;
    /** Evaluated by the recursive walk, not the levelized sweep. */
    bool lazy = false;
    int32_t width = 1;
    int32_t lo = 0;                       // Slice
    int32_t level = 0;
    NetId a = kNoNet, b = kNoNet, c = kNoNet;
    uint64_t mask = 1;                    // low-word mask, width <= 64
    std::vector<NetId> cargs;             // Concat operands, hi-first
    std::shared_ptr<const std::vector<BitVec>> rom;
};

/** A named flattened signal (dotted instance path). */
struct NetSignal
{
    enum class Kind { Input, Reg, Wire };
    Kind kind = Kind::Wire;
    NetId net = kNoNet;
    int32_t width = 1;
};

/** Guarded register update, ID-resolved. */
struct NetUpdate
{
    int32_t reg_index = -1;   // into regs(); -1 = unknown register
    NetId enable = kNoNet;
    NetId value = kNoNet;
    std::string reg_name;     // flat name, for diagnostics
};

/** Simulation-only print, ID-resolved. */
struct NetPrint
{
    NetId enable = kNoNet;
    NetId value = kNoNet;     // kNoNet: no value printed
    std::string text;
};

/**
 * The compiled form of one module hierarchy.
 *
 * `compile` may be called after construction (the simulator compiles
 * ad-hoc top-scope expressions for evalTop); nodes added then are
 * marked lazy so the levelized order stays valid.
 */
class Netlist
{
  public:
    explicit Netlist(const Module &top);

    const std::vector<Net> &nets() const { return _nets; }
    const Net &net(NetId id) const
    {
        return _nets[static_cast<size_t>(id)];
    }

    /** Initial value of every node (register init, zeros, consts). */
    const std::vector<BitVec> &initValues() const { return _init; }

    /** Strict combinational nodes in evaluation order. */
    const std::vector<NetId> &order() const { return _order; }

    /** order()[level_begin[l] .. level_begin[l+1]) is level l. */
    const std::vector<int32_t> &levelBegin() const
    {
        return _level_begin;
    }

    /**
     * Fan-out cone edges, CSR form: the strict combinational nodes
     * that read net `id` directly are
     * fanout()[fanoutBegin()[id] .. fanoutBegin()[id+1]).  Built once
     * during levelization; the event-driven sweep walks these edges
     * to re-evaluate only the cone downstream of a changed source.
     * Lazy consumers are excluded (the recursive walk re-reads its
     * whole cone every evaluation anyway).
     */
    const std::vector<int32_t> &fanoutBegin() const
    {
        return _fanout_begin;
    }
    const std::vector<NetId> &fanout() const { return _fanout; }

    /** Number of distinct levels in the strict order. */
    size_t levelCount() const
    {
        return _level_begin.empty() ? 0 : _level_begin.size() - 1;
    }

    /** Lazy nodes the clock edge must evaluate every cycle. */
    const std::vector<NetId> &lazyRoots() const { return _lazy_roots; }

    /** Flat signal name -> interned signal (sorted by name). */
    const std::map<std::string, NetSignal> &signals() const
    {
        return _signals;
    }

    /** Toggle-counted wire nodes, one entry per named wire. */
    const std::vector<NetId> &wireNets() const { return _wire_nets; }

    /** Register nodes in name order. */
    const std::vector<NetId> &regs() const { return _regs; }

    const std::vector<NetUpdate> &updates() const { return _updates; }
    const std::vector<NetPrint> &prints() const { return _prints; }

    /** Follow child-output aliases from a scoped name to a flat one. */
    std::string resolveName(const std::string &scope,
                            const std::string &name) const;

    /**
     * Compile an expression in the given scope and return its node.
     * Post-construction nodes are marked lazy (see class comment).
     */
    NetId compile(const ExprPtr &e, const std::string &scope);

    /** Debug name of a node ("" for anonymous expression nodes). */
    const std::string &nameOf(NetId id) const;

    /**
     * Visit every operand NetId of a node, in evaluation order
     * (a, b, c, then cargs).  The one operand walk shared by
     * levelization, the fan-out CSR, the design hash, and the C++
     * emitter's guard/liveness analyses.
     */
    template <typename F>
    static void forEachOperand(const Net &n, F f)
    {
        if (n.a != kNoNet)
            f(n.a);
        if (n.b != kNoNet)
            f(n.b);
        if (n.c != kNoNet)
            f(n.c);
        for (NetId id : n.cargs)
            f(id);
    }

  private:
    NetId newNet(Net n);
    NetId internSource(NetSignal::Kind kind, const std::string &flat,
                       int width, const BitVec &init);
    void flatten(const Module &m, const std::string &prefix);
    void levelize();
    void finalizeNode(Net &n);

    struct PendingWire
    {
        NetId root;
        ExprPtr expr;
        std::string scope;
    };
    struct PendingUpdate
    {
        std::string reg;      // flat name
        ExprPtr enable, value;
        std::string scope;
    };
    struct PendingPrint
    {
        ExprPtr enable, value;
        std::string text;
        std::string scope;
    };

    std::vector<Net> _nets;
    std::vector<BitVec> _init;
    std::vector<NetId> _order;
    std::vector<int32_t> _level_begin;
    std::vector<int32_t> _fanout_begin;
    std::vector<NetId> _fanout;
    std::vector<NetId> _lazy_roots;
    std::map<std::string, NetSignal> _signals;
    std::map<std::string, std::string> _aliases;
    std::vector<NetId> _wire_nets;
    std::vector<NetId> _regs;
    std::vector<NetUpdate> _updates;
    std::vector<NetPrint> _prints;
    std::map<NetId, std::string> _names;
    std::map<std::pair<const Expr *, std::string>, NetId> _expr_cache;
    std::vector<PendingWire> _pending_wires;
    std::vector<PendingUpdate> _pending_updates;
    std::vector<PendingPrint> _pending_prints;
    bool _constructed = false;
};

/**
 * Structural fingerprint of a netlist: FNV-1a over every node's kind,
 * operator, width, operands, ROM contents, and the initial values.
 * A compiled kernel records this at emission time and the simulator
 * refuses to attach an object whose hash disagrees (see
 * rtl/kernel_abi.h), so a stale shared object degrades to the
 * interpreter instead of silently simulating the wrong design.
 */
uint64_t designHash(const Netlist &nl);

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_NETLIST_H
