/**
 * @file
 * ASCII waveform recorder, used to reproduce the waveform figures of
 * the paper (Fig. 1 and Fig. 4).
 *
 * Like the other per-cycle observers (VcdWriter, Coverage,
 * ContractMonitor), sampling rides the unified obs::ChangeFeed:
 * recorded signals resolve to interned NetIds at construction, and
 * after the priming visit only signals on this recorder's changed
 * subset are re-read — the rest repeat their cached value.  Visits
 * that skip cycles or follow late pokes fall back to the feed's
 * rescan, and lazy / unresolved names are read directly every visit,
 * preserving peek()'s fault semantics exactly.  Duplicate traces of
 * one net chain off a single subscription.
 */

#ifndef ANVIL_RTL_WAVE_H
#define ANVIL_RTL_WAVE_H

#include <memory>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "rtl/interp.h"

namespace anvil {
namespace rtl {

/**
 * Records a set of signals every cycle and renders them as rows of
 * per-cycle values, in the style of the paper's waveforms.
 */
class WaveRecorder : public obs::Observer
{
  public:
    WaveRecorder(Sim &sim, std::vector<std::string> signals);
    ~WaveRecorder() override;

    /**
     * Standalone sampling through a private single-observer feed.
     * Not available once attached to an external ChangeFeed — drive
     * that feed instead.
     */
    void sample();

    /** Render the waveform table. */
    std::string render() const;

    /** All sampled values for one signal. */
    const std::vector<BitVec> &samplesOf(const std::string &sig) const;

    // obs::Observer
    void onAttach(obs::ChangeFeed &feed) override;
    void onPrime(Sim &sim, uint64_t cycle) override;
    void onCycle(Sim &sim, uint64_t cycle,
                 const std::vector<NetId> &changed) override;
    const char *observerName() const override { return "wave"; }

  private:
    struct Rec
    {
        std::string name;
        NetId net = kNoNet;   // kNoNet: unresolved, peek every visit
        bool fed = false;     // covered by the change feed
        int32_t dup_next = -1;   // next rec sharing this net, or -1
        BitVec last{1};
    };

    void directRead(Rec &r);
    void commitRow();

    Sim &_sim;
    std::vector<Rec> _recs;
    /** net -> first _recs index tracing that net, or -1. */
    std::vector<int32_t> _net_slot;
    std::vector<std::vector<BitVec>> _samples;
    std::unique_ptr<obs::ChangeFeed> _own_feed;   // standalone mode
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_WAVE_H
