/**
 * @file
 * ASCII waveform recorder, used to reproduce the waveform figures of
 * the paper (Fig. 1 and Fig. 4).
 */

#ifndef ANVIL_RTL_WAVE_H
#define ANVIL_RTL_WAVE_H

#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace rtl {

/**
 * Records a set of signals every cycle and renders them as rows of
 * per-cycle values, in the style of the paper's waveforms.
 */
class WaveRecorder
{
  public:
    WaveRecorder(Sim &sim, std::vector<std::string> signals);

    /** Sample all recorded signals at the current cycle. */
    void sample();

    /** Render the waveform table. */
    std::string render() const;

    /** All sampled values for one signal. */
    const std::vector<BitVec> &samplesOf(const std::string &sig) const;

  private:
    Sim &_sim;
    std::vector<std::string> _signals;
    std::vector<std::vector<BitVec>> _samples;
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_WAVE_H
