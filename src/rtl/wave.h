/**
 * @file
 * ASCII waveform recorder, used to reproduce the waveform figures of
 * the paper (Fig. 1 and Fig. 4).
 *
 * Like the other per-cycle observers (VcdWriter, Coverage,
 * ContractMonitor), sampling is change-fed: recorded signals resolve
 * to interned NetIds at construction, and after the priming sample
 * only signals on the simulator's per-cycle changed-net list
 * (Sim::changedNets) are re-read — the rest repeat their cached
 * value.  Samples that skip cycles, follow late pokes, or touch lazy
 * / unresolved names fall back to direct reads, preserving peek()'s
 * fault semantics exactly.
 */

#ifndef ANVIL_RTL_WAVE_H
#define ANVIL_RTL_WAVE_H

#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace rtl {

/**
 * Records a set of signals every cycle and renders them as rows of
 * per-cycle values, in the style of the paper's waveforms.
 */
class WaveRecorder
{
  public:
    WaveRecorder(Sim &sim, std::vector<std::string> signals);

    /** Sample all recorded signals at the current cycle. */
    void sample();

    /** Render the waveform table. */
    std::string render() const;

    /** All sampled values for one signal. */
    const std::vector<BitVec> &samplesOf(const std::string &sig) const;

  private:
    struct Rec
    {
        std::string name;
        NetId net = kNoNet;   // kNoNet: unresolved, peek every sample
        bool fed = false;     // covered by the change feed
        BitVec last{1};
    };

    Sim &_sim;
    std::vector<Rec> _recs;
    /** net -> _recs index (first trace of that net), or -1. */
    std::vector<int32_t> _net_slot;
    std::vector<std::vector<BitVec>> _samples;
    bool _primed = false;
    ChangeFeedCursor _cursor;
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_WAVE_H
