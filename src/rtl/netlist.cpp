#include "rtl/netlist.h"

#include <algorithm>
#include <cassert>

namespace anvil {
namespace rtl {

namespace {

bool
isCompute(Net::Kind k)
{
    switch (k) {
      case Net::Kind::Copy:
      case Net::Kind::Unop:
      case Net::Kind::Binop:
      case Net::Kind::Mux:
      case Net::Kind::Slice:
      case Net::Kind::Concat:
      case Net::Kind::Rom:
        return true;
      default:
        return false;
    }
}

uint64_t
maskFor(int width)
{
    if (width <= 0)
        return 0;
    if (width >= 64)
        return ~0ull;
    return (1ull << width) - 1;
}

} // namespace

Netlist::Netlist(const Module &top)
{
    flatten(top, "");

    // All named signals exist now; compile the drivers.  Wire roots
    // were reserved up front so references among wires (in either
    // direction, including cycles) resolve to stable ids.
    for (const auto &pw : _pending_wires)
        _nets[static_cast<size_t>(pw.root)].a =
            compile(pw.expr, pw.scope);

    // Register nodes in name order (one per surviving name).
    std::map<std::string, int32_t> reg_index;
    for (const auto &[name, sig] : _signals) {
        if (sig.kind == NetSignal::Kind::Reg) {
            reg_index[name] = static_cast<int32_t>(_regs.size());
            _regs.push_back(sig.net);
        } else if (sig.kind == NetSignal::Kind::Wire) {
            _wire_nets.push_back(sig.net);
        }
    }

    for (const auto &pu : _pending_updates) {
        NetUpdate u;
        u.reg_name = pu.reg;
        auto it = reg_index.find(pu.reg);
        auto sig = _signals.find(pu.reg);
        if (it != reg_index.end() && sig != _signals.end() &&
            sig->second.kind == NetSignal::Kind::Reg)
            u.reg_index = it->second;
        u.enable = compile(pu.enable, pu.scope);
        u.value = compile(pu.value, pu.scope);
        _updates.push_back(std::move(u));
    }
    for (const auto &pp : _pending_prints) {
        NetPrint p;
        p.text = pp.text;
        p.enable = compile(pp.enable, pp.scope);
        if (pp.value)
            p.value = compile(pp.value, pp.scope);
        _prints.push_back(std::move(p));
    }
    _pending_wires.clear();
    _pending_updates.clear();
    _pending_prints.clear();

    // Wire roots were finalized before their operands existed;
    // recompute every node's mask and fast-lane eligibility now.
    for (Net &n : _nets)
        finalizeNode(n);

    levelize();

    // Lazy nodes the clock edge must refresh every cycle: named
    // wires (toggle accounting reads their values) and update/print
    // operands.  peek/evalTop evaluate lazy cones on demand instead.
    auto add_lazy_root = [this](NetId id) {
        if (id != kNoNet && _nets[static_cast<size_t>(id)].lazy)
            _lazy_roots.push_back(id);
    };
    for (NetId id : _wire_nets)
        add_lazy_root(id);
    for (const auto &u : _updates) {
        add_lazy_root(u.enable);
        add_lazy_root(u.value);
    }
    for (const auto &p : _prints) {
        add_lazy_root(p.enable);
        add_lazy_root(p.value);
    }

    _constructed = true;
}

NetId
Netlist::newNet(Net n)
{
    finalizeNode(n);
    if (_constructed)
        n.lazy = true;   // appended nodes are outside the sweep order
    NetId id = static_cast<NetId>(_nets.size());
    _init.emplace_back(n.width);
    _nets.push_back(std::move(n));
    return id;
}

void
Netlist::finalizeNode(Net &n)
{
    n.mask = maskFor(n.width);
    if (!isCompute(n.kind) || n.width < 1 || n.width > 64) {
        n.fast = false;
        return;
    }
    bool fast = true;
    auto check = [&](NetId id) {
        if (id != kNoNet &&
            _nets[static_cast<size_t>(id)].width > 64)
            fast = false;
    };
    check(n.a);
    check(n.b);
    check(n.c);
    for (NetId id : n.cargs)
        check(id);
    n.fast = fast;
}

NetId
Netlist::internSource(NetSignal::Kind kind, const std::string &flat,
                      int width, const BitVec &init)
{
    Net n;
    n.kind = kind == NetSignal::Kind::Input ? Net::Kind::Input
                                            : Net::Kind::Reg;
    n.width = width;
    NetId id = newNet(std::move(n));
    _init[static_cast<size_t>(id)] = init.resize(width);
    _signals[flat] = {kind, id, width};
    _names[id] = flat;
    return id;
}

void
Netlist::flatten(const Module &m, const std::string &prefix)
{
    for (const auto &p : m.ports) {
        if (p.is_input && prefix.empty())
            internSource(NetSignal::Kind::Input, p.name, p.width,
                         BitVec(p.width));
        // Non-top input ports become wires during instance wiring;
        // output ports resolve to the same-named wire/reg.
    }
    for (const auto &r : m.regs)
        internSource(NetSignal::Kind::Reg, prefix + r.name, r.width,
                     r.init);
    for (const auto &w : m.wires) {
        Net n;
        n.kind = Net::Kind::Copy;   // operand filled after interning
        n.width = w.width;
        NetId root = newNet(std::move(n));
        _signals[prefix + w.name] = {NetSignal::Kind::Wire, root,
                                     w.width};
        _names[root] = prefix + w.name;
        _pending_wires.push_back({root, w.expr, prefix});
    }
    for (const auto &u : m.updates)
        _pending_updates.push_back(
            {prefix + u.reg, u.enable, u.value, prefix});
    for (const auto &pr : m.prints)
        _pending_prints.push_back(
            {pr.enable, pr.value, pr.text, prefix});

    for (const auto &inst : m.instances) {
        std::string child_prefix = prefix + inst.name + ".";
        flatten(*inst.module, child_prefix);
        // Child inputs: wires in the child scope, driven by parent
        // expressions evaluated in the parent scope.
        for (const auto &[port, expr] : inst.inputs) {
            const Port *p = inst.module->findPort(port);
            int w = p ? p->width : expr->width;
            Net n;
            n.kind = Net::Kind::Copy;
            n.width = w;
            NetId root = newNet(std::move(n));
            _signals[child_prefix + port] = {NetSignal::Kind::Wire,
                                             root, w};
            _names[root] = child_prefix + port;
            _pending_wires.push_back({root, expr, prefix});
        }
        // Child outputs: alias parent names to child signals.
        for (const auto &[parent_wire, child_port] : inst.outputs)
            _aliases[prefix + parent_wire] = child_prefix + child_port;
    }
}

std::string
Netlist::resolveName(const std::string &scope,
                     const std::string &name) const
{
    std::string flat = scope + name;
    auto it = _aliases.find(flat);
    while (it != _aliases.end()) {
        flat = it->second;
        it = _aliases.find(flat);
    }
    return flat;
}

NetId
Netlist::compile(const ExprPtr &e, const std::string &scope)
{
    auto key = std::make_pair(e.get(), scope);
    auto hit = _expr_cache.find(key);
    if (hit != _expr_cache.end())
        return hit->second;

    NetId id = kNoNet;
    switch (e->kind) {
      case Expr::Kind::Const: {
        Net n;
        n.kind = Net::Kind::Const;
        n.width = e->value.width();
        id = newNet(std::move(n));
        _init[static_cast<size_t>(id)] = e->value;
        break;
      }
      case Expr::Kind::Ref: {
        std::string flat = resolveName(scope, e->name);
        auto it = _signals.find(flat);
        if (it == _signals.end()) {
            Net n;
            n.kind = Net::Kind::BadRef;
            n.width = e->width;
            n.lazy = true;
            id = newNet(std::move(n));
            _names[id] = flat;
        } else if (it->second.width == e->width) {
            id = it->second.net;
        } else {
            Net n;
            n.kind = Net::Kind::Copy;
            n.width = e->width;
            n.a = it->second.net;
            id = newNet(std::move(n));
        }
        break;
      }
      case Expr::Kind::Unop: {
        Net n;
        n.kind = Net::Kind::Unop;
        n.op = e->op;
        n.a = compile(e->args[0], scope);
        // Faithful to the reference evaluator: Not keeps the operand
        // width, reductions produce one bit (e->width is ignored).
        n.width = (e->op == Op::RedOr || e->op == Op::RedAnd)
            ? 1
            : net(n.a).width;
        id = newNet(std::move(n));
        break;
      }
      case Expr::Kind::Binop: {
        Net n;
        n.kind = Net::Kind::Binop;
        n.op = e->op;
        n.width = e->width;
        n.a = compile(e->args[0], scope);
        n.b = compile(e->args[1], scope);
        id = newNet(std::move(n));
        break;
      }
      case Expr::Kind::Mux: {
        Net n;
        n.kind = Net::Kind::Mux;
        n.width = e->width;
        n.a = compile(e->args[0], scope);
        n.b = compile(e->args[1], scope);
        n.c = compile(e->args[2], scope);
        id = newNet(std::move(n));
        break;
      }
      case Expr::Kind::Slice: {
        Net n;
        n.kind = Net::Kind::Slice;
        n.width = e->width;
        n.lo = e->lo;
        n.a = compile(e->args[0], scope);
        id = newNet(std::move(n));
        break;
      }
      case Expr::Kind::Concat: {
        Net n;
        n.kind = Net::Kind::Concat;
        n.width = e->width;
        for (const auto &arg : e->args)
            n.cargs.push_back(compile(arg, scope));
        id = newNet(std::move(n));
        break;
      }
      case Expr::Kind::Rom: {
        Net n;
        n.kind = Net::Kind::Rom;
        n.width = e->width;
        n.rom = e->rom;
        n.a = compile(e->args[0], scope);
        id = newNet(std::move(n));
        break;
      }
    }
    assert(id != kNoNet);
    _expr_cache.emplace(key, id);
    return id;
}

void
Netlist::levelize()
{
    size_t count = _nets.size();
    std::vector<int32_t> indeg(count, 0);
    std::vector<std::vector<NetId>> consumers(count);
    std::vector<uint8_t> tainted(count, 0);

    for (size_t i = 0; i < count; i++) {
        const Net &n = _nets[i];
        if (n.kind == Net::Kind::BadRef)
            tainted[i] = 1;
        forEachOperand(n, [&](NetId o) {
            indeg[i]++;
            consumers[static_cast<size_t>(o)].push_back(
                static_cast<NetId>(i));
        });
    }

    std::vector<NetId> queue;
    for (size_t i = 0; i < count; i++)
        if (indeg[i] == 0)
            queue.push_back(static_cast<NetId>(i));

    size_t popped = 0;
    while (popped < queue.size()) {
        NetId o = queue[popped++];
        const Net &on = _nets[static_cast<size_t>(o)];
        for (NetId ci : consumers[static_cast<size_t>(o)]) {
            Net &cn = _nets[static_cast<size_t>(ci)];
            cn.level = std::max(cn.level, on.level + 1);
            tainted[static_cast<size_t>(ci)] =
                static_cast<uint8_t>(
                    tainted[static_cast<size_t>(ci)] |
                    tainted[static_cast<size_t>(o)]);
            if (--indeg[static_cast<size_t>(ci)] == 0)
                queue.push_back(ci);
        }
    }

    // Unpopped nodes sit on (or behind) a combinational cycle; they
    // and anything tainted by a bad reference fall back to the lazy
    // evaluator, which reproduces the reference fault behaviour.
    int32_t max_level = 0;
    std::vector<std::pair<int32_t, NetId>> strict;
    for (size_t i = 0; i < count; i++) {
        Net &n = _nets[i];
        if (indeg[i] != 0 || tainted[i])
            n.lazy = true;
        if (!n.lazy && isCompute(n.kind)) {
            strict.emplace_back(n.level, static_cast<NetId>(i));
            max_level = std::max(max_level, n.level);
        }
    }
    std::sort(strict.begin(), strict.end());

    _order.reserve(strict.size());
    _level_begin.assign(static_cast<size_t>(max_level) + 2, 0);
    for (const auto &[level, id] : strict) {
        _order.push_back(id);
        _level_begin[static_cast<size_t>(level) + 1]++;
    }
    for (size_t l = 1; l < _level_begin.size(); l++)
        _level_begin[l] += _level_begin[l - 1];

    // Fan-out CSR over strict consumers only: the edge list the
    // event-driven sweep follows when a net's value changes.  The
    // `consumers` adjacency above includes lazy nodes; those are
    // evaluated by the recursive walk, which never consults the
    // dirty sets, so they are dropped here.
    _fanout_begin.assign(count + 1, 0);
    for (size_t i = 0; i < count; i++)
        for (NetId ci : consumers[i]) {
            const Net &cn = _nets[static_cast<size_t>(ci)];
            if (!cn.lazy && isCompute(cn.kind))
                _fanout_begin[i + 1]++;
        }
    for (size_t i = 1; i < _fanout_begin.size(); i++)
        _fanout_begin[i] += _fanout_begin[i - 1];
    _fanout.resize(static_cast<size_t>(_fanout_begin[count]));
    std::vector<int32_t> cursor(_fanout_begin.begin(),
                                _fanout_begin.end() - 1);
    for (size_t i = 0; i < count; i++)
        for (NetId ci : consumers[i]) {
            const Net &cn = _nets[static_cast<size_t>(ci)];
            if (!cn.lazy && isCompute(cn.kind))
                _fanout[static_cast<size_t>(cursor[i]++)] = ci;
        }
}

const std::string &
Netlist::nameOf(NetId id) const
{
    static const std::string empty;
    auto it = _names.find(id);
    return it == _names.end() ? empty : it->second;
}

uint64_t
designHash(const Netlist &nl)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t w) {
        h ^= w;
        h *= 1099511628211ull;
    };
    mix(nl.nets().size());
    for (const Net &n : nl.nets()) {
        mix(static_cast<uint64_t>(n.kind) |
            (static_cast<uint64_t>(n.op) << 8) |
            (static_cast<uint64_t>(n.fast) << 16) |
            (static_cast<uint64_t>(n.lazy) << 17));
        mix((static_cast<uint64_t>(static_cast<uint32_t>(n.width))
             << 32) |
            static_cast<uint32_t>(n.lo));
        mix((static_cast<uint64_t>(static_cast<uint32_t>(n.a))
             << 32) |
            static_cast<uint32_t>(n.b));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(n.c)));
        mix(n.cargs.size());
        for (NetId c : n.cargs)
            mix(static_cast<uint64_t>(c));
        if (n.rom) {
            mix(n.rom->size());
            for (const BitVec &e : *n.rom) {
                mix(static_cast<uint64_t>(e.width()));
                for (int w = 0; w < e.words(); w++)
                    mix(e.word(w));
            }
        }
    }
    for (const BitVec &v : nl.initValues()) {
        mix(static_cast<uint64_t>(v.width()));
        for (int w = 0; w < v.words(); w++)
            mix(v.word(w));
    }
    return h;
}

} // namespace rtl
} // namespace anvil
