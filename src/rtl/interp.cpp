#include "rtl/interp.h"

#include <stdexcept>

namespace anvil {
namespace rtl {

BitVec
applyUnop(Op op, const BitVec &a)
{
    switch (op) {
      case Op::Not:
        return ~a;
      case Op::RedOr:
        return BitVec(1, a.any() ? 1 : 0);
      case Op::RedAnd:
        return BitVec(1, a == BitVec::ones(a.width()) ? 1 : 0);
      default:
        throw std::logic_error("bad unary op");
    }
}

BitVec
applyBinop(Op op, const BitVec &a, const BitVec &b, int width)
{
    auto ra = a.resize(width);
    auto rb = b.resize(width);
    switch (op) {
      case Op::And: return ra & rb;
      case Op::Or: return ra | rb;
      case Op::Xor: return ra ^ rb;
      case Op::Add: return ra + rb;
      case Op::Sub: return ra - rb;
      case Op::Mul: return ra * rb;
      case Op::Eq: return BitVec(1, a == b ? 1 : 0);
      case Op::Ne: return BitVec(1, a != b ? 1 : 0);
      case Op::Lt: return BitVec(1, a.ult(b) ? 1 : 0);
      case Op::Le: return BitVec(1, a.ule(b) ? 1 : 0);
      case Op::Gt: return BitVec(1, b.ult(a) ? 1 : 0);
      case Op::Ge: return BitVec(1, b.ule(a) ? 1 : 0);
      case Op::Shl: {
        // A shift amount at or beyond the width clears the value;
        // do not feed huge amounts into the word shifter.
        uint64_t sh = rb.toUint64();
        if (sh >= static_cast<uint64_t>(width))
            return BitVec(width);
        return ra << static_cast<int>(sh);
      }
      case Op::Shr: {
        uint64_t sh = rb.toUint64();
        if (sh >= static_cast<uint64_t>(width))
            return BitVec(width);
        return ra >> static_cast<int>(sh);
      }
      default:
        throw std::logic_error("bad binary op");
    }
}

Sim::Sim(std::shared_ptr<const Module> top)
    : _top(std::move(top)), _nl(*_top)
{
    _val = _nl.initValues();
    _lazy_gen.assign(_val.size(), 0);
    _visiting.assign(_val.size(), 0);
    _reg_next.reserve(_nl.regs().size());
    for (NetId r : _nl.regs())
        _reg_next.push_back(_val[static_cast<size_t>(r)]);
    _wire_last.reserve(_nl.wireNets().size());
    for (NetId w : _nl.wireNets())
        _wire_last.emplace_back(_nl.net(w).width);
}

const NetSignal *
Sim::findSignal(const std::string &flat) const
{
    auto it = _nl.signals().find(flat);
    return it == _nl.signals().end() ? nullptr : &it->second;
}

void
Sim::setInput(const std::string &name, const BitVec &v)
{
    const NetSignal *sig = findSignal(name);
    if (!sig || sig->kind != NetSignal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    _val[static_cast<size_t>(sig->net)] = v.resize(sig->width);
    _dirty = true;
}

void
Sim::setInput(const std::string &name, uint64_t v)
{
    const NetSignal *sig = findSignal(name);
    if (!sig || sig->kind != NetSignal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    _val[static_cast<size_t>(sig->net)] = BitVec(sig->width, v);
    _dirty = true;
}

/** Compute one strict node from its already-computed operands. */
void
Sim::computeNet(NetId id)
{
    const Net &n = _nl.net(id);
    BitVec &out = _val[static_cast<size_t>(id)];

    if (n.fast) {
        // u64 lane: every involved value fits one word.  Operand
        // values are normalized, so toUint64() is the whole value;
        // setUint64() re-applies this node's width mask.
        uint64_t r = 0;
        switch (n.kind) {
          case Net::Kind::Copy:
            r = _val[static_cast<size_t>(n.a)].toUint64();
            break;
          case Net::Kind::Unop: {
            uint64_t a = _val[static_cast<size_t>(n.a)].toUint64();
            switch (n.op) {
              case Op::Not: r = ~a; break;
              case Op::RedOr: r = a != 0; break;
              case Op::RedAnd: r = a == _nl.net(n.a).mask; break;
              default: throw std::logic_error("bad unary op");
            }
            break;
          }
          case Net::Kind::Binop: {
            uint64_t a = _val[static_cast<size_t>(n.a)].toUint64();
            uint64_t b = _val[static_cast<size_t>(n.b)].toUint64();
            uint64_t m = n.mask;
            switch (n.op) {
              case Op::And: r = a & b; break;
              case Op::Or: r = a | b; break;
              case Op::Xor: r = a ^ b; break;
              case Op::Add: r = (a & m) + (b & m); break;
              case Op::Sub: r = (a & m) - (b & m); break;
              case Op::Mul: r = (a & m) * (b & m); break;
              case Op::Eq: r = a == b; break;
              case Op::Ne: r = a != b; break;
              case Op::Lt: r = a < b; break;
              case Op::Le: r = a <= b; break;
              case Op::Gt: r = a > b; break;
              case Op::Ge: r = a >= b; break;
              case Op::Shl: {
                uint64_t sh = b & m;
                r = sh >= static_cast<uint64_t>(n.width)
                    ? 0 : (a & m) << sh;
                break;
              }
              case Op::Shr: {
                uint64_t sh = b & m;
                r = sh >= static_cast<uint64_t>(n.width)
                    ? 0 : (a & m) >> sh;
                break;
              }
              default: throw std::logic_error("bad binary op");
            }
            break;
          }
          case Net::Kind::Mux:
            r = _val[static_cast<size_t>(n.a)].toUint64() != 0
                ? _val[static_cast<size_t>(n.b)].toUint64()
                : _val[static_cast<size_t>(n.c)].toUint64();
            break;
          case Net::Kind::Slice: {
            uint64_t a = _val[static_cast<size_t>(n.a)].toUint64();
            if (n.lo >= 0)
                r = n.lo >= 64 ? 0 : a >> n.lo;
            else
                // Bits below index 0 read as zero: a left shift.
                r = -n.lo >= 64 ? 0 : a << -n.lo;
            break;
          }
          case Net::Kind::Concat: {
            uint64_t acc = 0;
            int sh = 0;
            // cargs are hi-first; assemble from the low end.
            for (auto it = n.cargs.rbegin(); it != n.cargs.rend();
                 ++it) {
                acc |= _val[static_cast<size_t>(*it)].toUint64()
                    << sh;
                sh += _nl.net(*it).width;
                if (sh >= 64)
                    break;
            }
            r = acc;
            break;
          }
          case Net::Kind::Rom: {
            uint64_t addr =
                _val[static_cast<size_t>(n.a)].toUint64();
            r = addr < n.rom->size() ? (*n.rom)[addr].toUint64() : 0;
            break;
          }
          default:
            break;   // sources are never in the sweep order
        }
        out.setUint64(r);
        return;
    }

    switch (n.kind) {
      case Net::Kind::Copy:
        out = _val[static_cast<size_t>(n.a)].resize(n.width);
        break;
      case Net::Kind::Unop:
        out = applyUnop(n.op, _val[static_cast<size_t>(n.a)]);
        break;
      case Net::Kind::Binop:
        out = applyBinop(n.op, _val[static_cast<size_t>(n.a)],
                         _val[static_cast<size_t>(n.b)], n.width);
        break;
      case Net::Kind::Mux:
        out = (_val[static_cast<size_t>(n.a)].any()
                   ? _val[static_cast<size_t>(n.b)]
                   : _val[static_cast<size_t>(n.c)])
                  .resize(n.width);
        break;
      case Net::Kind::Slice:
        out = _val[static_cast<size_t>(n.a)].slice(n.lo, n.width);
        break;
      case Net::Kind::Concat: {
        BitVec acc(0);
        bool first = true;
        for (auto it = n.cargs.rbegin(); it != n.cargs.rend(); ++it) {
            const BitVec &part = _val[static_cast<size_t>(*it)];
            if (first) {
                acc = part;
                first = false;
            } else {
                acc = acc.concatHigh(part);
            }
        }
        out = acc.resize(n.width);
        break;
      }
      case Net::Kind::Rom: {
        uint64_t addr = _val[static_cast<size_t>(n.a)].toUint64();
        out = addr >= n.rom->size()
            ? BitVec(n.width)
            : (*n.rom)[addr].resize(n.width);
        break;
      }
      case Net::Kind::BadRef:
        throw std::invalid_argument("no such signal: " +
                                    _nl.nameOf(id));
      default:
        break;
    }
}

/**
 * Evaluate a lazy node recursively, reproducing the reference
 * interpreter's order of effects: mux branches short-circuit,
 * unresolved references fault only when reached, and re-entering a
 * named wire raises the combinational-loop error.
 */
const BitVec &
Sim::evalLazy(NetId id)
{
    size_t i = static_cast<size_t>(id);
    const Net &n = _nl.net(id);
    if (!n.lazy || _lazy_gen[i] == _gen)
        return _val[i];
    switch (n.kind) {
      case Net::Kind::Const:
      case Net::Kind::Input:
      case Net::Kind::Reg:
        _lazy_gen[i] = _gen;
        return _val[i];
      case Net::Kind::BadRef:
        throw std::invalid_argument("no such signal: " +
                                    _nl.nameOf(id));
      default:
        break;
    }

    // Loop detection guards named wire roots, as in the reference
    // interpreter (cycles can only close through named wires).
    bool guard =
        n.kind == Net::Kind::Copy && !_nl.nameOf(id).empty();
    if (guard) {
        if (_visiting[i])
            throw std::runtime_error("combinational loop through " +
                                     _nl.nameOf(id));
        _visiting[i] = 1;
    }

    if (n.kind == Net::Kind::Mux) {
        bool taken = evalLazy(n.a).any();
        const BitVec &src = evalLazy(taken ? n.b : n.c);
        if (n.fast)
            _val[i].setUint64(src.toUint64());
        else
            _val[i] = src.resize(n.width);
    } else {
        if (n.a != kNoNet)
            evalLazy(n.a);
        if (n.b != kNoNet)
            evalLazy(n.b);
        if (n.c != kNoNet)
            evalLazy(n.c);
        for (NetId arg : n.cargs)
            evalLazy(arg);
        computeNet(id);
    }

    if (guard)
        _visiting[i] = 0;
    _lazy_gen[i] = _gen;
    return _val[i];
}

/**
 * Recompute all strict combinational values if anything changed.
 * Strict nodes are acyclic and fully resolved, so this never faults;
 * lazy nodes are evaluated on demand (peek/evalTop touch only the
 * requested cone, matching the reference interpreter's fault
 * behaviour) or in bulk by step().
 */
void
Sim::sweep()
{
    if (!_dirty)
        return;
    _gen++;
    const auto &order = _nl.order();
    const auto &lb = _nl.levelBegin();
    for (size_t l = 0; l + 1 < lb.size(); l++)
        for (int32_t k = lb[l]; k < lb[l + 1]; k++)
            computeNet(order[static_cast<size_t>(k)]);
    _dirty = false;
}

BitVec
Sim::peek(const std::string &name)
{
    std::string flat = _nl.resolveName("", name);
    const NetSignal *sig = findSignal(flat);
    if (!sig)
        throw std::invalid_argument("no such signal: " + flat);
    sweep();
    return evalLazy(sig->net);
}

void
Sim::step(int n)
{
    const auto &wires = _nl.wireNets();
    const auto &regs = _nl.regs();
    for (int it = 0; it < n; it++) {
        sweep();
        // The edge evaluates every wire (like the reference
        // interpreter's evalAll), so cyclic or unresolved regions
        // fault here even when unpeeked.
        for (NetId id : _nl.lazyRoots())
            evalLazy(id);

        // Toggle accounting against the previous cycle's values.
        if (_toggles_primed) {
            for (size_t i = 0; i < wires.size(); i++)
                _total_toggles +=
                    (_val[static_cast<size_t>(wires[i])] ^
                     _wire_last[i])
                        .popcount();
        }
        for (size_t i = 0; i < wires.size(); i++)
            _wire_last[i] = _val[static_cast<size_t>(wires[i])];
        _toggles_primed = true;

        // Compute next-state for all registers.
        for (size_t i = 0; i < regs.size(); i++)
            _reg_next[i] = _val[static_cast<size_t>(regs[i])];
        for (const auto &u : _nl.updates()) {
            if (_val[static_cast<size_t>(u.enable)].any()) {
                if (u.reg_index < 0)
                    throw std::invalid_argument(
                        "update of unknown reg: " + u.reg_name);
                size_t ri = static_cast<size_t>(u.reg_index);
                _reg_next[ri] =
                    _val[static_cast<size_t>(u.value)].resize(
                        _nl.net(regs[ri]).width);
            }
        }
        for (const auto &p : _nl.prints()) {
            if (_val[static_cast<size_t>(p.enable)].any()) {
                std::string line = p.text;
                if (p.value != kNoNet)
                    line += " " +
                        _val[static_cast<size_t>(p.value)].toHex();
                _log.push_back(line);
            }
        }

        // Clock edge: commit and count register toggles.
        for (size_t i = 0; i < regs.size(); i++) {
            BitVec &cur = _val[static_cast<size_t>(regs[i])];
            _total_toggles += (_reg_next[i] ^ cur).popcount();
            cur = _reg_next[i];
        }
        _cycle++;
        _dirty = true;
    }
}

int
Sim::stateBits() const
{
    int bits = 0;
    for (NetId r : _nl.regs())
        bits += _nl.net(r).width;
    return bits;
}

std::vector<std::string>
Sim::regNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, sig] : _nl.signals())
        if (sig.kind == NetSignal::Kind::Reg)
            out.push_back(name);
    return out;
}

BitVec
Sim::regValue(const std::string &flat_name) const
{
    const NetSignal *sig = findSignal(flat_name);
    if (!sig || sig->kind != NetSignal::Kind::Reg)
        throw std::invalid_argument("no such register: " + flat_name);
    return _val[static_cast<size_t>(sig->net)];
}

void
Sim::setRegValue(const std::string &flat_name, const BitVec &v)
{
    const NetSignal *sig = findSignal(flat_name);
    if (!sig || sig->kind != NetSignal::Kind::Reg)
        throw std::invalid_argument("no such register: " + flat_name);
    _val[static_cast<size_t>(sig->net)] = v.resize(sig->width);
    _dirty = true;
}

std::vector<BitVec>
Sim::captureRegs() const
{
    std::vector<BitVec> vals;
    vals.reserve(_nl.regs().size());
    for (NetId r : _nl.regs())
        vals.push_back(_val[static_cast<size_t>(r)]);
    return vals;
}

void
Sim::restoreRegs(const std::vector<BitVec> &vals)
{
    const auto &regs = _nl.regs();
    if (vals.size() != regs.size())
        throw std::invalid_argument("register snapshot size mismatch");
    for (size_t i = 0; i < regs.size(); i++)
        _val[static_cast<size_t>(regs[i])] =
            vals[i].resize(_nl.net(regs[i]).width);
    _dirty = true;
}

const BitVec &
Sim::value(NetId id)
{
    if (id < 0 || static_cast<size_t>(id) >= _val.size())
        throw std::invalid_argument("no such net id");
    sweep();
    return evalLazy(id);
}

std::vector<std::string>
Sim::inputNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, sig] : _nl.signals())
        if (sig.kind == NetSignal::Kind::Input)
            out.push_back(name);
    return out;
}

BitVec
Sim::evalTop(const ExprPtr &e)
{
    NetId id;
    auto it = _top_cache.find(e.get());
    if (it != _top_cache.end()) {
        id = it->second;
    } else {
        id = _nl.compile(e, "");
        // Appended nodes are lazy; grow the runtime arrays.
        const auto &init = _nl.initValues();
        for (size_t i = _val.size(); i < init.size(); i++)
            _val.push_back(init[i]);
        _lazy_gen.resize(init.size(), 0);
        _visiting.resize(init.size(), 0);
        _top_cache.emplace(e.get(), id);
        _top_exprs.push_back(e);
    }
    sweep();
    return evalLazy(id);
}

} // namespace rtl
} // namespace anvil
