#include "rtl/interp.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace anvil {
namespace rtl {

const char *
sweepModeName(SweepMode mode)
{
    switch (mode) {
      case SweepMode::Full: return "full";
      case SweepMode::Dirty: return "dirty";
      case SweepMode::Threaded: return "threaded";
    }
    return "?";
}

uint64_t
monotonicNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char *
simPhaseName(SimPhase phase)
{
    switch (phase) {
      case SimPhase::Sweep: return "sweep";
      case SimPhase::KernelEval: return "kernel";
      case SimPhase::Commit: return "commit";
    }
    return "?";
}

/**
 * Fork/join worker pool for sharding one level's dirty worklist.
 * run() splits [0, total) into one contiguous chunk per thread; the
 * calling thread takes the first chunk and then blocks until every
 * helper has finished, so all writes made inside `fn` are ordered
 * before anything the caller does next (mutex handshake — no atomics
 * on simulation values).
 */
class SweepPool
{
  public:
    explicit SweepPool(int threads) : _threads(std::max(threads, 1))
    {
        for (int i = 1; i < _threads; i++)
            _workers.emplace_back([this, i] { workerLoop(i); });
    }

    ~SweepPool()
    {
        {
            std::lock_guard<std::mutex> lk(_m);
            _stop = true;
        }
        _cv_start.notify_all();
        for (auto &t : _workers)
            t.join();
    }

    int threads() const { return _threads; }

    void run(const std::function<void(size_t, size_t)> &fn,
             size_t total)
    {
        if (total == 0)
            return;
        if (_threads == 1) {
            fn(0, total);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(_m);
            _fn = &fn;
            _total = total;
            _pending = static_cast<int>(_workers.size());
            _epoch++;
        }
        _cv_start.notify_all();
        size_t end0 = total / static_cast<size_t>(_threads);
        if (end0 > 0)
            fn(0, end0);
        std::unique_lock<std::mutex> lk(_m);
        _cv_done.wait(lk, [this] { return _pending == 0; });
        _fn = nullptr;
    }

  private:
    void workerLoop(int index)
    {
        uint64_t seen = 0;
        for (;;) {
            const std::function<void(size_t, size_t)> *fn;
            size_t b, e;
            {
                std::unique_lock<std::mutex> lk(_m);
                _cv_start.wait(
                    lk, [&] { return _stop || _epoch != seen; });
                if (_stop)
                    return;
                seen = _epoch;
                fn = _fn;
                size_t t = static_cast<size_t>(_threads);
                b = _total * static_cast<size_t>(index) / t;
                e = _total * static_cast<size_t>(index + 1) / t;
            }
            if (b < e)
                (*fn)(b, e);
            {
                std::lock_guard<std::mutex> lk(_m);
                --_pending;
            }
            _cv_done.notify_one();
        }
    }

    int _threads;
    std::vector<std::thread> _workers;
    std::mutex _m;
    std::condition_variable _cv_start, _cv_done;
    const std::function<void(size_t, size_t)> *_fn = nullptr;
    size_t _total = 0;
    int _pending = 0;
    uint64_t _epoch = 0;
    bool _stop = false;
};

BitVec
applyUnop(Op op, const BitVec &a)
{
    switch (op) {
      case Op::Not:
        return ~a;
      case Op::RedOr:
        return BitVec(1, a.any() ? 1 : 0);
      case Op::RedAnd:
        return BitVec(1, a == BitVec::ones(a.width()) ? 1 : 0);
      default:
        throw std::logic_error("bad unary op");
    }
}

BitVec
applyBinop(Op op, const BitVec &a, const BitVec &b, int width)
{
    auto ra = a.resize(width);
    auto rb = b.resize(width);
    switch (op) {
      case Op::And: return ra & rb;
      case Op::Or: return ra | rb;
      case Op::Xor: return ra ^ rb;
      case Op::Add: return ra + rb;
      case Op::Sub: return ra - rb;
      case Op::Mul: return ra * rb;
      case Op::Eq: return BitVec(1, a == b ? 1 : 0);
      case Op::Ne: return BitVec(1, a != b ? 1 : 0);
      case Op::Lt: return BitVec(1, a.ult(b) ? 1 : 0);
      case Op::Le: return BitVec(1, a.ule(b) ? 1 : 0);
      case Op::Gt: return BitVec(1, b.ult(a) ? 1 : 0);
      case Op::Ge: return BitVec(1, b.ule(a) ? 1 : 0);
      case Op::Shl: {
        // A shift amount at or beyond the width clears the value;
        // do not feed huge amounts into the word shifter.
        uint64_t sh = rb.toUint64();
        if (sh >= static_cast<uint64_t>(width))
            return BitVec(width);
        return ra << static_cast<int>(sh);
      }
      case Op::Shr: {
        uint64_t sh = rb.toUint64();
        if (sh >= static_cast<uint64_t>(width))
            return BitVec(width);
        return ra >> static_cast<int>(sh);
      }
      default:
        throw std::logic_error("bad binary op");
    }
}

Sim::Sim(std::shared_ptr<const Module> top)
    : Sim(std::move(top), nullptr)
{
}

Sim::Sim(std::shared_ptr<const Module> top,
         std::shared_ptr<const Netlist> netlist)
    : _top(std::move(top)),
      _nl_own(netlist ? nullptr : std::make_shared<Netlist>(*_top)),
      _nl_hold(netlist ? std::move(netlist)
                       : std::shared_ptr<const Netlist>(_nl_own)),
      _nl(*_nl_hold)
{
    _val = _nl.initValues();
    _lazy_gen.assign(_val.size(), 0);
    _visiting.assign(_val.size(), 0);
    _reg_next.reserve(_nl.regs().size());
    for (NetId r : _nl.regs())
        _reg_next.push_back(_val[static_cast<size_t>(r)]);
    _wire_last.reserve(_nl.wireNets().size());
    _wire_slot.assign(_val.size(), -1);
    for (size_t i = 0; i < _nl.wireNets().size(); i++) {
        NetId w = _nl.wireNets()[i];
        _wire_last.emplace_back(_nl.net(w).width);
        _wire_slot[static_cast<size_t>(w)] =
            static_cast<int32_t>(i);
    }
    _buckets.resize(_nl.levelCount());
    _dirty_mark.assign(_val.size(), 0);
    _change_mark.assign(_val.size(), 0);
    _level_of.reserve(_val.size());
    for (const Net &n : _nl.nets())
        _level_of.push_back(n.level);
    _stats.strict_nodes = _nl.order().size();
    _stats.mode = _mode;

    // Enable-net -> update-indices CSR for the clock edge (counting
    // sort, so each enable's updates stay in declaration order and
    // last-wins semantics are preserved).
    const auto &updates = _nl.updates();
    _upd_begin.assign(_val.size() + 1, 0);
    for (const auto &u : updates)
        _upd_begin[static_cast<size_t>(u.enable) + 1]++;
    for (size_t i = 1; i < _upd_begin.size(); i++)
        _upd_begin[i] += _upd_begin[i - 1];
    _upd_list.resize(updates.size());
    {
        std::vector<int32_t> fill(_upd_begin.begin(),
                                  _upd_begin.end() - 1);
        for (size_t u = 0; u < updates.size(); u++)
            _upd_list[static_cast<size_t>(
                fill[static_cast<size_t>(updates[u].enable)]++)] =
                static_cast<int32_t>(u);
    }
    _armed.assign(updates.size(), 0);
    _reg_touched.assign(_nl.regs().size(), 0);
}

Sim::~Sim()
{
    if (_kctx)
        _kernel.abi->destroy(_kctx);
}

void
Sim::setSweepMode(SweepMode mode, int threads, size_t shard_min)
{
    _mode = mode;
    _shard_min = std::max<size_t>(shard_min, 1);
    if (mode == SweepMode::Threaded) {
        unsigned hw = std::thread::hardware_concurrency();
        int want = threads > 0
            ? threads
            : static_cast<int>(std::max(2u, std::min(4u, hw)));
        if (!_pool || _pool->threads() != want)
            _pool = std::make_unique<SweepPool>(want);
    } else {
        _pool.reset();
    }
    _stats.mode = _mode;
    _stats.threads = _pool ? _pool->threads() : 1;
    // Re-sweep the whole table once so the new mode starts from a
    // fully consistent frame regardless of pending dirty state.
    _need_full = true;
    _dirty = true;
}

const SweepStats &
Sim::sweepStats() const
{
    if (_kctx) {
        // The kernel schedules internally (worklists + its own dense
        // fallback); surface its counters alongside the host's.
        AnvilKernelStats ks;
        _kernel.abi->stats(_kctx, &ks);
        _stats.kernel_dense_frames = ks.dense_frames;
        _stats.kernel_fallback_switches = ks.fallback_switches;
    }
    return _stats;
}

void
Sim::setEvalCounting(bool on)
{
    _eval_counting = on;
    if (on && _eval_count.size() < _nl.nets().size())
        _eval_count.resize(_nl.nets().size(), 0);
}

std::vector<uint64_t>
Sim::kernelLevelEvals() const
{
    std::vector<uint64_t> out;
    if (_kctx && _kernel.abi->level_count) {
        out.resize(_kernel.abi->level_count, 0);
        _kernel.abi->level_stats(_kctx, out.data());
    }
    return out;
}

const NetSignal *
Sim::findSignal(const std::string &flat) const
{
    auto it = _nl.signals().find(flat);
    return it == _nl.signals().end() ? nullptr : &it->second;
}

void
Sim::recordChange(NetId id)
{
    size_t i = static_cast<size_t>(id);
    if (_change_mark[i] == _frame_id)
        return;
    _change_mark[i] = _frame_id;
    _frame_changed.push_back(id);
}

void
Sim::seedSource(NetId id)
{
    _seeds.push_back(id);
    _poke_tick++;
    if (_kctx) {
        // Sources are Sim-owned: mirror the new value into the
        // kernel's state array and mark its consumer blocks dirty.
        size_t i = static_cast<size_t>(id);
        const BitVec &v = _val[i];
        uint64_t *p = _kptr[i];
        int w = _nl.net(id).width;
        int words = w <= 0 ? 1 : (w + 63) / 64;
        for (int k = 0; k < words; k++)
            p[k] = v.word(k);
        _kernel.abi->poke(_kctx, static_cast<int32_t>(id));
    }
}

bool
Sim::attachKernel(const KernelRef &kernel)
{
    if (!kernel.abi ||
        kernel.abi->abi_version != ANVIL_KERNEL_ABI_VERSION ||
        kernel.abi->design_hash != designHash(_nl) ||
        kernel.abi->net_count != _nl.nets().size())
        return false;
    void *ctx = kernel.abi->create();
    if (!ctx)
        return false;
    if (_kctx)
        _kernel.abi->destroy(_kctx);
    _kernel = kernel;
    _kctx = ctx;
    _kchanged.assign(_nl.nets().size(), 0);
    _kstale.assign(_val.size(), 0);
    _kptr.resize(_nl.nets().size());
    for (size_t i = 0; i < _kptr.size(); i++)
        _kptr[i] =
            kernel.abi->net_ptr(ctx, static_cast<int32_t>(i));
    // The kernel starts from the netlist's init values; push the
    // current source state (which may already differ) and force one
    // dense eval so every strict value is consistent with it.
    for (size_t i = 0; i < _nl.nets().size(); i++) {
        const Net &n = _nl.net(static_cast<NetId>(i));
        if (n.kind != Net::Kind::Input && n.kind != Net::Kind::Reg)
            continue;
        const BitVec &v = _val[i];
        uint64_t *p = _kptr[i];
        int words = n.width <= 0 ? 1 : (n.width + 63) / 64;
        for (int k = 0; k < words; k++)
            p[k] = v.word(k);
        _kernel.abi->poke(_kctx, static_cast<int32_t>(i));
    }
    _need_full = true;
    _dirty = true;
    return true;
}

/** Copy one net's value out of the kernel's packed-word state. */
void
Sim::refreshFromKernel(NetId id)
{
    size_t i = static_cast<size_t>(id);
    _kstale[i] = 0;
    const uint64_t *p = _kptr[i];
    BitVec &v = _val[i];
    if (v.width() <= 64)
        v.setUint64(p[0]);
    else
        v.setWords(p, (v.width() + 63) / 64);
}

/**
 * Sweep by calling into the attached kernel.  The kernel runs the
 * same levelized event-driven schedule (exact per-level worklists,
 * change-cutting, its own dense-fallback hysteresis); its exact
 * changed-net list feeds the interpreter's frame bookkeeping, and the
 * values themselves are copied back lazily (valOf) only when an
 * observer or the clock edge actually reads them.
 */
void
Sim::sweepKernel()
{
    bool full = _need_full || _mode == SweepMode::Full;
    uint64_t n = 0;
    uint64_t ev = full
        ? _kernel.abi->eval_full(_kctx, _kchanged.data(), &n)
        : _kernel.abi->eval(_kctx, _kchanged.data(), &n);
    _frame_evals += ev;
    _seeds.clear();
    _need_full = false;
    for (uint64_t k = 0; k < n; k++) {
        NetId id = _kchanged[static_cast<size_t>(k)];
        _kstale[static_cast<size_t>(id)] = 1;
        recordChange(id);
    }
}

/** Mark the strict consumers of a changed net for re-evaluation. */
void
Sim::pushConsumers(NetId id)
{
    const auto &fb = _nl.fanoutBegin();
    // Nets appended after construction (evalTop) are lazy and have
    // no CSR entry.
    if (static_cast<size_t>(id) + 1 >= fb.size())
        return;
    const auto &fo = _nl.fanout();
    for (int32_t k = fb[static_cast<size_t>(id)];
         k < fb[static_cast<size_t>(id) + 1]; k++) {
        NetId c = fo[static_cast<size_t>(k)];
        size_t ci = static_cast<size_t>(c);
        if (_dirty_mark[ci] == _sweep_id)
            continue;
        _dirty_mark[ci] = _sweep_id;
        _buckets[static_cast<size_t>(_level_of[ci])].push_back(c);
    }
}

void
Sim::setInput(const std::string &name, const BitVec &v)
{
    const NetSignal *sig = findSignal(name);
    if (!sig || sig->kind != NetSignal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    size_t i = static_cast<size_t>(sig->net);
    BitVec nv = v.resize(sig->width);
    if (nv == _val[i])
        return;
    _val[i] = std::move(nv);
    recordChange(sig->net);
    seedSource(sig->net);
    _dirty = true;
}

void
Sim::setInput(const std::string &name, uint64_t v)
{
    const NetSignal *sig = findSignal(name);
    if (!sig || sig->kind != NetSignal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    size_t i = static_cast<size_t>(sig->net);
    BitVec nv(sig->width, v);
    if (nv == _val[i])
        return;
    _val[i] = std::move(nv);
    recordChange(sig->net);
    seedSource(sig->net);
    _dirty = true;
}

/**
 * Compute one strict node from its already-computed operands.
 * Returns whether the node's value actually changed — the signal the
 * dirty sweep uses to cut propagation and the changed-net list uses
 * to feed observers.  Called concurrently on distinct nodes by the
 * threaded sweep: only _val[id] is written, operands are at lower
 * levels and therefore stable.
 */
bool
Sim::computeNet(NetId id)
{
    const Net &n = _nl.net(id);
    BitVec &out = _val[static_cast<size_t>(id)];

    // Attribution hook (setEvalCounting).  Safe under the threaded
    // sweep: concurrent calls always target distinct nodes.  Nets
    // appended after counting was enabled (evalTop) are skipped.
    if (_eval_counting &&
        static_cast<size_t>(id) < _eval_count.size())
        _eval_count[static_cast<size_t>(id)]++;

    if (n.fast) {
        // u64 lane: every involved value fits one word.  Operand
        // values are normalized, so toUint64() is the whole value;
        // setUint64() re-applies this node's width mask.
        uint64_t old = out.toUint64();
        uint64_t r = 0;
        switch (n.kind) {
          case Net::Kind::Copy:
            r = _val[static_cast<size_t>(n.a)].toUint64();
            break;
          case Net::Kind::Unop: {
            uint64_t a = _val[static_cast<size_t>(n.a)].toUint64();
            switch (n.op) {
              case Op::Not: r = ~a; break;
              case Op::RedOr: r = a != 0; break;
              case Op::RedAnd: r = a == _nl.net(n.a).mask; break;
              default: throw std::logic_error("bad unary op");
            }
            break;
          }
          case Net::Kind::Binop: {
            uint64_t a = _val[static_cast<size_t>(n.a)].toUint64();
            uint64_t b = _val[static_cast<size_t>(n.b)].toUint64();
            uint64_t m = n.mask;
            switch (n.op) {
              case Op::And: r = a & b; break;
              case Op::Or: r = a | b; break;
              case Op::Xor: r = a ^ b; break;
              case Op::Add: r = (a & m) + (b & m); break;
              case Op::Sub: r = (a & m) - (b & m); break;
              case Op::Mul: r = (a & m) * (b & m); break;
              case Op::Eq: r = a == b; break;
              case Op::Ne: r = a != b; break;
              case Op::Lt: r = a < b; break;
              case Op::Le: r = a <= b; break;
              case Op::Gt: r = a > b; break;
              case Op::Ge: r = a >= b; break;
              case Op::Shl: {
                uint64_t sh = b & m;
                r = sh >= static_cast<uint64_t>(n.width)
                    ? 0 : (a & m) << sh;
                break;
              }
              case Op::Shr: {
                uint64_t sh = b & m;
                r = sh >= static_cast<uint64_t>(n.width)
                    ? 0 : (a & m) >> sh;
                break;
              }
              default: throw std::logic_error("bad binary op");
            }
            break;
          }
          case Net::Kind::Mux:
            r = _val[static_cast<size_t>(n.a)].toUint64() != 0
                ? _val[static_cast<size_t>(n.b)].toUint64()
                : _val[static_cast<size_t>(n.c)].toUint64();
            break;
          case Net::Kind::Slice: {
            uint64_t a = _val[static_cast<size_t>(n.a)].toUint64();
            if (n.lo >= 0)
                r = n.lo >= 64 ? 0 : a >> n.lo;
            else
                // Bits below index 0 read as zero: a left shift.
                r = -n.lo >= 64 ? 0 : a << -n.lo;
            break;
          }
          case Net::Kind::Concat: {
            uint64_t acc = 0;
            int sh = 0;
            // cargs are hi-first; assemble from the low end.
            for (auto it = n.cargs.rbegin(); it != n.cargs.rend();
                 ++it) {
                acc |= _val[static_cast<size_t>(*it)].toUint64()
                    << sh;
                sh += _nl.net(*it).width;
                if (sh >= 64)
                    break;
            }
            r = acc;
            break;
          }
          case Net::Kind::Rom: {
            uint64_t addr =
                _val[static_cast<size_t>(n.a)].toUint64();
            r = addr < n.rom->size() ? (*n.rom)[addr].toUint64() : 0;
            break;
          }
          default:
            break;   // sources are never in the sweep order
        }
        out.setUint64(r);
        return (r & n.mask) != old;
    }

    BitVec nv(n.width);
    switch (n.kind) {
      case Net::Kind::Copy:
        nv = _val[static_cast<size_t>(n.a)].resize(n.width);
        break;
      case Net::Kind::Unop:
        nv = applyUnop(n.op, _val[static_cast<size_t>(n.a)]);
        break;
      case Net::Kind::Binop:
        nv = applyBinop(n.op, _val[static_cast<size_t>(n.a)],
                        _val[static_cast<size_t>(n.b)], n.width);
        break;
      case Net::Kind::Mux:
        nv = (_val[static_cast<size_t>(n.a)].any()
                  ? _val[static_cast<size_t>(n.b)]
                  : _val[static_cast<size_t>(n.c)])
                 .resize(n.width);
        break;
      case Net::Kind::Slice:
        nv = _val[static_cast<size_t>(n.a)].slice(n.lo, n.width);
        break;
      case Net::Kind::Concat: {
        BitVec acc(0);
        bool first = true;
        for (auto it = n.cargs.rbegin(); it != n.cargs.rend(); ++it) {
            const BitVec &part = _val[static_cast<size_t>(*it)];
            if (first) {
                acc = part;
                first = false;
            } else {
                acc = acc.concatHigh(part);
            }
        }
        nv = acc.resize(n.width);
        break;
      }
      case Net::Kind::Rom: {
        uint64_t addr = _val[static_cast<size_t>(n.a)].toUint64();
        nv = addr >= n.rom->size()
            ? BitVec(n.width)
            : (*n.rom)[addr].resize(n.width);
        break;
      }
      case Net::Kind::BadRef:
        throw std::invalid_argument("no such signal: " +
                                    _nl.nameOf(id));
      default:
        break;
    }
    if (nv == out)
        return false;
    out = std::move(nv);
    return true;
}

/**
 * Evaluate a lazy node recursively, reproducing the reference
 * interpreter's order of effects: mux branches short-circuit,
 * unresolved references fault only when reached, and re-entering a
 * named wire raises the combinational-loop error.
 */
const BitVec &
Sim::evalLazy(NetId id)
{
    size_t i = static_cast<size_t>(id);
    const Net &n = _nl.net(id);
    if (!n.lazy)
        return valOf(id);   // strict values may live in the kernel
    if (_lazy_gen[i] == _gen)
        return _val[i];
    switch (n.kind) {
      case Net::Kind::Const:
      case Net::Kind::Input:
      case Net::Kind::Reg:
        _lazy_gen[i] = _gen;
        return _val[i];
      case Net::Kind::BadRef:
        throw std::invalid_argument("no such signal: " +
                                    _nl.nameOf(id));
      default:
        break;
    }

    // Loop detection guards named wire roots, as in the reference
    // interpreter (cycles can only close through named wires).
    bool guard =
        n.kind == Net::Kind::Copy && !_nl.nameOf(id).empty();
    if (guard) {
        if (_visiting[i])
            throw std::runtime_error("combinational loop through " +
                                     _nl.nameOf(id));
        _visiting[i] = 1;
    }

    if (n.kind == Net::Kind::Mux) {
        bool taken = evalLazy(n.a).any();
        const BitVec &src = evalLazy(taken ? n.b : n.c);
        if (n.fast) {
            uint64_t old = _val[i].toUint64();
            _val[i].setUint64(src.toUint64());
            if (_val[i].toUint64() != old)
                recordChange(id);
        } else {
            BitVec nv = src.resize(n.width);
            if (nv != _val[i]) {
                _val[i] = std::move(nv);
                recordChange(id);
            }
        }
    } else {
        if (n.a != kNoNet)
            evalLazy(n.a);
        if (n.b != kNoNet)
            evalLazy(n.b);
        if (n.c != kNoNet)
            evalLazy(n.c);
        for (NetId arg : n.cargs)
            evalLazy(arg);
        if (computeNet(id))
            recordChange(id);
    }

    if (guard)
        _visiting[i] = 0;
    _lazy_gen[i] = _gen;
    return _val[i];
}

/** Dense fallback: recompute every strict node in levelized order. */
void
Sim::sweepFull()
{
    const auto &order = _nl.order();
    for (NetId id : order)
        if (computeNet(id))
            recordChange(id);
    _frame_evals += order.size();
    _seeds.clear();
    _need_full = false;
}

/**
 * Event-driven sweep: seed the per-level worklists with the strict
 * consumers of every source that changed since the last sweep, then
 * walk levels bottom-up re-evaluating only marked nodes.  A node
 * whose value is unchanged does not propagate, so the cost is the
 * size of the *changing* cone, not the design.  Wide levels are
 * sharded across the worker pool in Threaded mode; bookkeeping
 * (change records, consumer pushes) is joined back on this thread in
 * worklist order, so results and observer feeds are deterministic.
 */
void
Sim::sweepDirty()
{
    _sweep_id++;
    for (NetId s : _seeds)
        pushConsumers(s);
    _seeds.clear();

    for (size_t l = 0; l < _buckets.size(); l++) {
        auto &bucket = _buckets[l];
        if (bucket.empty())
            continue;
        if (_pool && bucket.size() >= _shard_min) {
            _shard_changed.assign(bucket.size(), 0);
            _pool->run(
                [this, &bucket](size_t b, size_t e) {
                    for (size_t k = b; k < e; k++)
                        _shard_changed[k] =
                            computeNet(bucket[k]) ? 1 : 0;
                },
                bucket.size());
            _stats.sharded_levels++;
            _frame_evals += bucket.size();
            for (size_t k = 0; k < bucket.size(); k++)
                if (_shard_changed[k]) {
                    recordChange(bucket[k]);
                    pushConsumers(bucket[k]);
                }
        } else {
            _frame_evals += bucket.size();
            for (NetId id : bucket)
                if (computeNet(id)) {
                    recordChange(id);
                    pushConsumers(id);
                }
        }
        bucket.clear();
    }
}

/**
 * Recompute strict combinational values if anything changed.  Strict
 * nodes are acyclic and fully resolved, so this never faults; lazy
 * nodes are evaluated on demand (peek/evalTop touch only the
 * requested cone, matching the reference interpreter's fault
 * behaviour) or in bulk by step().
 */
void
Sim::sweep()
{
    if (!_dirty)
        return;
    _gen++;
    uint64_t t0 = _telemetry ? monotonicNanos() : 0;
    if (_kctx) {
        sweepKernel();
        _stats.kernel_frames++;
        _dirty = false;
        if (_telemetry)
            _telemetry->simPhase(SimPhase::KernelEval, _cycle, t0,
                                 monotonicNanos());
        return;
    }
    if (_mode == SweepMode::Full || _need_full)
        sweepFull();
    else if (_mode == SweepMode::Dirty && _prefer_dense)
        // Adaptive fallback: on frames where most of the design is
        // switching anyway (see rollFrame), worklist bookkeeping
        // costs more than it saves — run the dense path, which
        // produces the same values and the same changed-net feed.
        sweepFull();
    else
        sweepDirty();
    _dirty = false;
    if (_telemetry)
        _telemetry->simPhase(SimPhase::Sweep, _cycle, t0,
                             monotonicNanos());
}

const std::vector<NetId> &
Sim::changedNets()
{
    sweep();
    return _frame_changed;
}

/** Close the per-cycle activity window: stats, then a fresh frame. */
void
Sim::rollFrame()
{
    _stats.cycles++;
    _stats.nodes_evaluated += _frame_evals;
    _stats.peak_nodes = std::max(_stats.peak_nodes, _frame_evals);
    uint64_t changed = _frame_changed.size();
    _stats.nets_changed += changed;
    _stats.peak_changed = std::max(_stats.peak_changed, changed);
    // Hysteresis for the adaptive dense fallback: enter when more
    // than half the strict table changed this frame, leave once the
    // fraction drops below 40%.
    uint64_t strict = _stats.strict_nodes;
    if (strict > 0) {
        if (changed * 2 > strict) {
            if (!_prefer_dense)
                _stats.dense_fallback_switches++;
            _prefer_dense = true;
        } else if (changed * 5 < strict * 2) {
            _prefer_dense = false;
        }
    }
    _frame_evals = 0;
    _frame_changed.clear();
    _frame_id++;
    _poke_at_roll = _poke_tick;
}

BitVec
Sim::peek(const std::string &name)
{
    std::string flat = _nl.resolveName("", name);
    const NetSignal *sig = findSignal(flat);
    if (!sig)
        throw std::invalid_argument("no such signal: " + flat);
    sweep();
    return evalLazy(sig->net);
}

void
Sim::step(int n)
{
    const auto &wires = _nl.wireNets();
    const auto &regs = _nl.regs();
    const auto &updates = _nl.updates();
    for (int it = 0; it < n; it++) {
        sweep();
        // The edge evaluates every wire (like the reference
        // interpreter's evalAll), so cyclic or unresolved regions
        // fault here even when unpeeked.
        for (NetId id : _nl.lazyRoots())
            evalLazy(id);

        uint64_t commit_t0 = _telemetry ? monotonicNanos() : 0;

        // Keep the armed-update set fresh from this frame's
        // changed-net delta (a full enable scan only on the first
        // cycle): an enable net that is not in the list kept its
        // value, so its updates kept their armed state.
        if (!_armed_primed) {
            _armed_count = 0;
            for (size_t u = 0; u < updates.size(); u++) {
                _armed[u] = valOf(updates[u].enable).any() ? 1 : 0;
                if (_armed[u])
                    _armed_count++;
            }
            _armed_primed = true;
        } else {
            for (NetId id : _frame_changed) {
                size_t i = static_cast<size_t>(id);
                if (i + 1 >= _upd_begin.size())
                    continue;
                for (int32_t k = _upd_begin[i]; k < _upd_begin[i + 1];
                     k++) {
                    size_t u =
                        static_cast<size_t>(_upd_list[static_cast<
                            size_t>(k)]);
                    uint8_t armed =
                        valOf(updates[u].enable).any() ? 1 : 0;
                    if (armed == _armed[u])
                        continue;
                    _armed[u] = armed;
                    if (armed)
                        _armed_count++;
                    else
                        _armed_count--;
                }
            }
        }

        // Toggle accounting against the previous cycle's values,
        // driven by the changed-net list: a wire absent from the
        // list is unchanged and contributes no toggles.  The xor
        // popcount works straight off the two values' words, so the
        // delta never materializes.
        if (_toggles_primed) {
            for (NetId id : _frame_changed) {
                int32_t slot = _wire_slot[static_cast<size_t>(id)];
                if (slot < 0)
                    continue;
                size_t s = static_cast<size_t>(slot);
                size_t i = static_cast<size_t>(id);
                if (_kctx && _kstale[i]) {
                    // Kernel-owned value: count toggles straight off
                    // the kernel's words and refresh only the
                    // last-seen copy.  The host mirror stays stale —
                    // it is refreshed lazily if an observer actually
                    // reads it — so the per-change tax of the
                    // compiled backend is one popcount, not a BitVec
                    // round trip.
                    const uint64_t *p = _kptr[i];
                    BitVec &last = _wire_last[s];
                    _total_toggles += static_cast<uint64_t>(
                        last.xorPopcountWords(p, last.words()));
                    if (last.width() <= 64)
                        last.setUint64(p[0]);
                    else
                        last.setWords(p, last.words());
                    continue;
                }
                const BitVec &cur = valOf(id);
                _total_toggles += static_cast<uint64_t>(
                    cur.xorPopcount(_wire_last[s]));
                _wire_last[s] = cur;
            }
        } else {
            for (size_t i = 0; i < wires.size(); i++)
                _wire_last[i] = valOf(wires[i]);
            _toggles_primed = true;
        }

        // Next-state only where an armed update fires; untouched
        // registers hold their value by construction, so the edge
        // costs O(armed updates), not O(registers).
        if (_armed_count != 0) {
            for (size_t u = 0; u < updates.size(); u++) {
                if (!_armed[u])
                    continue;
                const auto &up = updates[u];
                if (up.reg_index < 0)
                    throw std::invalid_argument(
                        "update of unknown reg: " + up.reg_name);
                size_t ri = static_cast<size_t>(up.reg_index);
                if (!_reg_touched[ri]) {
                    _reg_touched[ri] = 1;
                    _touched_regs.push_back(
                        static_cast<int32_t>(ri));
                }
                _reg_next[ri] = valOf(up.value).resize(
                    _nl.net(regs[ri]).width);
            }
        }
        for (const auto &p : _nl.prints()) {
            if (valOf(p.enable).any()) {
                std::string line = p.text;
                if (p.value != kNoNet)
                    line += " " + valOf(p.value).toHex();
                _log.push_back(line);
            }
        }

        // The pre-edge frame is complete: fold it into the activity
        // stats and start the next one, so the commits below seed
        // the new frame's changed list.
        rollFrame();

        // Clock edge: commit the touched registers (ascending, the
        // same order the dense scan visited them), count register
        // toggles, and seed the next sweep with those that changed.
        if (!_touched_regs.empty()) {
            std::sort(_touched_regs.begin(), _touched_regs.end());
            for (int32_t r : _touched_regs) {
                size_t i = static_cast<size_t>(r);
                _reg_touched[i] = 0;
                BitVec &cur = _val[static_cast<size_t>(regs[i])];
                int flips = _reg_next[i].xorPopcount(cur);
                if (flips == 0)
                    continue;
                _total_toggles += static_cast<uint64_t>(flips);
                cur = _reg_next[i];
                recordChange(regs[i]);
                seedSource(regs[i]);
            }
            _touched_regs.clear();
        }
        _cycle++;
        _dirty = true;
        if (_telemetry)
            _telemetry->simPhase(SimPhase::Commit, _cycle - 1,
                                 commit_t0, monotonicNanos());
    }
}

int
Sim::stateBits() const
{
    int bits = 0;
    for (NetId r : _nl.regs())
        bits += _nl.net(r).width;
    return bits;
}

std::vector<std::string>
Sim::regNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, sig] : _nl.signals())
        if (sig.kind == NetSignal::Kind::Reg)
            out.push_back(name);
    return out;
}

BitVec
Sim::regValue(const std::string &flat_name) const
{
    const NetSignal *sig = findSignal(flat_name);
    if (!sig || sig->kind != NetSignal::Kind::Reg)
        throw std::invalid_argument("no such register: " + flat_name);
    return _val[static_cast<size_t>(sig->net)];
}

void
Sim::setRegValue(const std::string &flat_name, const BitVec &v)
{
    const NetSignal *sig = findSignal(flat_name);
    if (!sig || sig->kind != NetSignal::Kind::Reg)
        throw std::invalid_argument("no such register: " + flat_name);
    size_t i = static_cast<size_t>(sig->net);
    BitVec nv = v.resize(sig->width);
    if (nv == _val[i])
        return;
    _val[i] = std::move(nv);
    recordChange(sig->net);
    seedSource(sig->net);
    _dirty = true;
}

std::vector<BitVec>
Sim::captureRegs() const
{
    std::vector<BitVec> vals;
    vals.reserve(_nl.regs().size());
    for (NetId r : _nl.regs())
        vals.push_back(_val[static_cast<size_t>(r)]);
    return vals;
}

void
Sim::setReg(size_t reg_index, const BitVec &v)
{
    const auto &regs = _nl.regs();
    if (reg_index >= regs.size())
        throw std::invalid_argument("register index out of range");
    size_t ri = static_cast<size_t>(regs[reg_index]);
    int width = _nl.net(regs[reg_index]).width;
    // No-op fast path before any resize copy: the prover re-parks
    // the whole register file every step and nearly every write is
    // a no-op.
    if (v.width() == width && v == _val[ri])
        return;
    BitVec nv = v.resize(width);
    if (nv == _val[ri])
        return;
    _val[ri] = std::move(nv);
    recordChange(regs[reg_index]);
    seedSource(regs[reg_index]);
    _dirty = true;
}

const BitVec &
Sim::regValue(size_t reg_index) const
{
    const auto &regs = _nl.regs();
    if (reg_index >= regs.size())
        throw std::invalid_argument("register index out of range");
    return _val[static_cast<size_t>(regs[reg_index])];
}

void
Sim::restoreRegs(const std::vector<BitVec> &vals)
{
    const auto &regs = _nl.regs();
    if (vals.size() != regs.size())
        throw std::invalid_argument("register snapshot size mismatch");
    for (size_t i = 0; i < regs.size(); i++) {
        size_t ri = static_cast<size_t>(regs[i]);
        BitVec nv = vals[i].resize(_nl.net(regs[i]).width);
        if (nv == _val[ri])
            continue;
        _val[ri] = std::move(nv);
        recordChange(regs[i]);
        seedSource(regs[i]);
        _dirty = true;
    }
}

const BitVec &
Sim::value(NetId id)
{
    if (id < 0 || static_cast<size_t>(id) >= _val.size())
        throw std::invalid_argument("no such net id");
    sweep();
    return evalLazy(id);
}

std::vector<std::string>
Sim::inputNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, sig] : _nl.signals())
        if (sig.kind == NetSignal::Kind::Input)
            out.push_back(name);
    return out;
}

void
Sim::growRuntimeArrays(size_t n)
{
    const auto &init = _nl.initValues();
    for (size_t i = _val.size(); i < n; i++)
        _val.push_back(init[i]);
    _lazy_gen.resize(n, 0);
    _visiting.resize(n, 0);
    _dirty_mark.resize(n, 0);
    _change_mark.resize(n, 0);
    _wire_slot.resize(n, -1);
    if (!_kstale.empty())
        _kstale.resize(n, 0);   // appended nets are never in the kernel
    if (!_kptr.empty())
        _kptr.resize(n, nullptr);
    // Appended nets are lazy and never drive updates; keep the CSR
    // indexable for changed-net consumers.
    _upd_begin.resize(n + 1, _upd_begin.back());
}

BitVec
Sim::evalTop(const ExprPtr &e)
{
    NetId id;
    auto it = _top_cache.find(e.get());
    if (it != _top_cache.end()) {
        id = it->second;
    } else {
        // Ad-hoc expressions append lazy nodes to the netlist —
        // impossible when the netlist is shared immutably across
        // Sim instances (the farm fan-out).
        if (!_nl_own)
            throw std::logic_error(
                "Sim::evalTop: cannot compile ad-hoc expressions "
                "on a shared immutable netlist");
        id = _nl_own->compile(e, "");
        // Appended nodes are lazy; grow the runtime arrays.
        growRuntimeArrays(_nl.initValues().size());
        _top_cache.emplace(e.get(), id);
        _top_exprs.push_back(e);
    }
    sweep();
    return evalLazy(id);
}

} // namespace rtl
} // namespace anvil
