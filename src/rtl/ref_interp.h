/**
 * @file
 * Reference interpreter for the structural RTL IR.
 *
 * This is the original string-keyed recursive evaluator: signal names
 * are resolved through a `std::map` on every expression reference and
 * wires are memoized per (cycle, generation).  It is retained verbatim
 * as the semantic oracle for the compiled netlist simulator
 * (rtl/interp.h) — differential tests assert that peeks, dprint logs
 * and toggle counts agree exactly — and as the baseline that
 * bench_sim_perf measures speedups against.  Do not use it on hot
 * paths.
 */

#ifndef ANVIL_RTL_REF_INTERP_H
#define ANVIL_RTL_REF_INTERP_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtl/rtl.h"

namespace anvil {
namespace rtl {

/**
 * Reference simulator for a flattened module hierarchy.
 *
 * Signal names use the instance path: a wire `w` inside instance `u`
 * of the top module is `u.w`.  Top-level signals are unprefixed.
 */
class RefSim
{
  public:
    explicit RefSim(std::shared_ptr<const Module> top);

    /** Drive a top-level input for the current cycle onwards. */
    void setInput(const std::string &name, const BitVec &v);
    void setInput(const std::string &name, uint64_t v);

    /** Read any signal (port, wire, or register) by flat name. */
    BitVec peek(const std::string &name);

    /** Evaluate combinational logic and advance n clock edges. */
    void step(int n = 1);

    uint64_t cycle() const { return _cycle; }

    /** Total bit toggles observed across all signals. */
    uint64_t totalToggles() const { return _total_toggles; }

    /** Number of flattened state bits (for the cost model). */
    int stateBits() const;

    /** Captured dprint output. */
    const std::vector<std::string> &log() const { return _log; }

    /** All flattened register names. */
    std::vector<std::string> regNames() const;

    /** Direct register access. */
    BitVec regValue(const std::string &flat_name) const;
    void setRegValue(const std::string &flat_name, const BitVec &v);

    /** Top-level input port names. */
    std::vector<std::string> inputNames() const;

    /** Evaluate an expression in the top-level scope. */
    BitVec evalTop(const ExprPtr &e);

  private:
    struct Signal
    {
        enum class Kind { Input, Reg, Wire };
        Kind kind = Kind::Wire;
        int width = 1;
        ExprPtr expr;       // Wire: driver (names resolved in scope)
        std::string scope;  // prefix for resolving expr references
        BitVec value{1};    // Input/Reg: current value
        BitVec next{1};     // Reg: pending next value
        // Evaluation cache (invalidated on input/register pokes).
        uint64_t eval_cycle = UINT64_MAX;
        uint64_t eval_gen = 0;
        BitVec cached{1};
        bool visiting = false;
        uint64_t last_cycle_val_cycle = UINT64_MAX;
        BitVec last_cycle_val{1};
    };

    struct FlatUpdate
    {
        std::string reg;     // flat name
        ExprPtr enable;
        ExprPtr value;
        std::string scope;
    };

    struct FlatPrint
    {
        ExprPtr enable;
        std::string text;
        ExprPtr value;
        std::string scope;
    };

    void flatten(const Module &m, const std::string &prefix);
    std::string resolveName(const std::string &scope,
                            const std::string &name) const;
    BitVec eval(const ExprPtr &e, const std::string &scope);
    BitVec evalSignal(const std::string &flat);
    void evalAll();

    std::shared_ptr<const Module> _top;
    std::map<std::string, Signal> _signals;
    std::vector<FlatUpdate> _updates;
    std::vector<FlatPrint> _prints;
    /** Child-output aliases: parent flat name -> child flat name. */
    std::map<std::string, std::string> _aliases;
    uint64_t _cycle = 0;
    uint64_t _gen = 0;
    uint64_t _total_toggles = 0;
    std::vector<std::string> _log;
};

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_REF_INTERP_H
