#include "rtl/rtl.h"

#include <cassert>

namespace anvil {
namespace rtl {

ExprPtr
cst(const BitVec &v)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Const;
    e->width = v.width();
    e->value = v;
    return e;
}

ExprPtr
cst(int width, uint64_t v)
{
    return cst(BitVec(width, v));
}

ExprPtr
ref(const std::string &name, int width)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Ref;
    e->name = name;
    e->width = width;
    return e;
}

ExprPtr
unop(Op op, ExprPtr a)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Unop;
    e->op = op;
    e->width = (op == Op::RedOr || op == Op::RedAnd) ? 1 : a->width;
    e->args = {std::move(a)};
    return e;
}

ExprPtr
binop(Op op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Binop;
    e->op = op;
    bool cmp = op == Op::Eq || op == Op::Ne || op == Op::Lt ||
        op == Op::Le || op == Op::Gt || op == Op::Ge;
    e->width = cmp ? 1 : std::max(a->width, b->width);
    e->args = {std::move(a), std::move(b)};
    return e;
}

ExprPtr
mux(ExprPtr sel, ExprPtr then_e, ExprPtr else_e)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Mux;
    e->width = std::max(then_e->width, else_e->width);
    e->args = {std::move(sel), std::move(then_e), std::move(else_e)};
    return e;
}

ExprPtr
slice(ExprPtr a, int lo, int width)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Slice;
    e->width = width;
    e->lo = lo;
    e->args = {std::move(a)};
    return e;
}

ExprPtr
concat(std::vector<ExprPtr> parts_hi_first)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Concat;
    int w = 0;
    for (const auto &p : parts_hi_first)
        w += p->width;
    e->width = w;
    e->args = std::move(parts_hi_first);
    return e;
}

ExprPtr
romLookup(std::shared_ptr<const std::vector<BitVec>> table, ExprPtr addr,
          int width)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Rom;
    e->width = width;
    e->rom = std::move(table);
    e->args = {std::move(addr)};
    return e;
}

ExprPtr operator&(ExprPtr a, ExprPtr b)
{ return binop(Op::And, std::move(a), std::move(b)); }
ExprPtr operator|(ExprPtr a, ExprPtr b)
{ return binop(Op::Or, std::move(a), std::move(b)); }
ExprPtr operator^(ExprPtr a, ExprPtr b)
{ return binop(Op::Xor, std::move(a), std::move(b)); }
ExprPtr operator+(ExprPtr a, ExprPtr b)
{ return binop(Op::Add, std::move(a), std::move(b)); }
ExprPtr operator-(ExprPtr a, ExprPtr b)
{ return binop(Op::Sub, std::move(a), std::move(b)); }
ExprPtr operator~(ExprPtr a)
{ return unop(Op::Not, std::move(a)); }
ExprPtr eq(ExprPtr a, ExprPtr b)
{ return binop(Op::Eq, std::move(a), std::move(b)); }
ExprPtr ne(ExprPtr a, ExprPtr b)
{ return binop(Op::Ne, std::move(a), std::move(b)); }
ExprPtr ult(ExprPtr a, ExprPtr b)
{ return binop(Op::Lt, std::move(a), std::move(b)); }

ExprPtr
Module::input(const std::string &n, int width)
{
    ports.push_back({n, width, true});
    return ref(n, width);
}

void
Module::output(const std::string &n, int width)
{
    ports.push_back({n, width, false});
}

ExprPtr
Module::reg(const std::string &n, int width, uint64_t init)
{
    regs.push_back({n, width, BitVec(width, init)});
    return ref(n, width);
}

ExprPtr
Module::wire(const std::string &n, ExprPtr e)
{
    int w = e->width;
    wires.push_back({n, w, std::move(e)});
    return ref(n, w);
}

void
Module::update(const std::string &r, ExprPtr enable, ExprPtr value)
{
    updates.push_back({r, std::move(enable), std::move(value)});
}

void
Module::print(ExprPtr enable, const std::string &text, ExprPtr value)
{
    prints.push_back({std::move(enable), text, std::move(value)});
}

const Port *
Module::findPort(const std::string &n) const
{
    for (const auto &p : ports)
        if (p.name == n)
            return &p;
    return nullptr;
}

const WireDecl *
Module::findWire(const std::string &n) const
{
    for (const auto &w : wires)
        if (w.name == n)
            return &w;
    return nullptr;
}

const RegDecl *
Module::findReg(const std::string &n) const
{
    for (const auto &r : regs)
        if (r.name == n)
            return &r;
    return nullptr;
}

} // namespace rtl
} // namespace anvil
