#include "bsv/rules.h"

#include <algorithm>

namespace anvil {
namespace bsv {

void
RuleDesign::addReg(const std::string &name, uint64_t init)
{
    _state[name] = init;
}

void
RuleDesign::addRule(Rule rule)
{
    _rules.push_back(std::move(rule));
}

bool
RuleDesign::conflicts(const Rule &a, const Rule &b) const
{
    for (const auto &w : a.writes) {
        if (b.writes.count(w) || b.reads.count(w))
            return true;
    }
    for (const auto &w : b.writes) {
        if (a.reads.count(w))
            return true;
    }
    return false;
}

std::vector<std::string>
RuleDesign::step()
{
    // Choose a maximal conflict-free set of enabled rules in urgency
    // order, then fire them atomically against the cycle-start state.
    std::vector<const Rule *> chosen;
    for (const auto &r : _rules) {
        if (!r.guard(_state))
            continue;
        bool ok = true;
        for (const Rule *c : chosen) {
            if (conflicts(r, *c)) {
                ok = false;
                break;
            }
        }
        if (ok)
            chosen.push_back(&r);
    }

    State next = _state;
    std::vector<std::string> fired;
    for (const Rule *r : chosen) {
        r->action(next);
        fired.push_back(r->name);
    }
    _state = std::move(next);
    return fired;
}

Schedule
RuleDesign::run(int n)
{
    Schedule sched;
    for (int i = 0; i < n; i++)
        sched.push_back(step());
    return sched;
}

} // namespace bsv
} // namespace anvil
