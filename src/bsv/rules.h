/**
 * @file
 * A miniature Bluespec-SystemVerilog-style rule system (paper §2.2,
 * Fig. 2).
 *
 * Rules are atomic guarded actions over registers.  Each cycle, a
 * scheduler picks a maximal set of enabled, pairwise conflict-free
 * rules (no write-write or read-write overlap) and fires them
 * atomically.  Crucially — and this is the failure mode Fig. 2
 * demonstrates — scheduling is performed independently for each
 * cycle: BSV does not reason about constraints that span multiple
 * cycles, so a schedule can be conflict-free per cycle yet violate a
 * multi-cycle timing contract.
 */

#ifndef ANVIL_BSV_RULES_H
#define ANVIL_BSV_RULES_H

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace anvil {
namespace bsv {

/** Register state of a rule-based design. */
using State = std::map<std::string, uint64_t>;

/** One atomic rule: guard + action + read/write sets. */
struct Rule
{
    std::string name;
    std::function<bool(const State &)> guard;
    std::function<void(State &)> action;
    std::set<std::string> reads;
    std::set<std::string> writes;
};

/** A fired-rule trace: one entry per cycle. */
using Schedule = std::vector<std::vector<std::string>>;

/**
 * Rule-based design with a per-cycle conflict-free scheduler.
 *
 * The scheduler enumerates rules in priority order (urgency), firing
 * each enabled rule whose read/write sets do not conflict with the
 * rules already chosen this cycle.
 */
class RuleDesign
{
  public:
    void addReg(const std::string &name, uint64_t init = 0);
    void addRule(Rule rule);

    State &state() { return _state; }
    const State &state() const { return _state; }

    /** Fire one cycle; returns the names of the rules that fired. */
    std::vector<std::string> step();

    /** Run for n cycles and return the full schedule. */
    Schedule run(int n);

    /**
     * True when rules a and b conflict (write-write or read-write
     * overlap) and hence can never fire in the same cycle.
     */
    bool conflicts(const Rule &a, const Rule &b) const;

    const std::vector<Rule> &rules() const { return _rules; }

  private:
    State _state;
    std::vector<Rule> _rules;
};

} // namespace bsv
} // namespace anvil

#endif // ANVIL_BSV_RULES_H
