/**
 * @file
 * CVA6-style MMU baselines: an 8-entry fully-associative TLB and an
 * Sv39-style three-level page table walker (PTW).
 *
 * The TLB answers combinationally (hit/miss in the request cycle);
 * the PTW has dynamic latency (one memory round trip per level, with
 * early termination on superpage leaves and faults), which is exactly
 * the behaviour static timing contracts cannot capture (§2.4, §7.1).
 */

#include "designs/designs.h"

#include <algorithm>
#include <stdexcept>

#include "support/strings.h"

namespace anvil {
namespace designs {

using namespace rtl;

namespace {

constexpr int kTlbEntries = 8;

int
log2Exact(int v, const char *what)
{
    int bits = 0;
    while ((1 << bits) < v)
        bits++;
    if ((1 << bits) != v || v < 1)
        throw std::invalid_argument(std::string(what) +
                                    " must be a power of two");
    return bits;
}

} // namespace

rtl::ModulePtr
buildTlbBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "tlb_baseline";

    auto req_data = m->input("io_req_data", 32);   // vpn
    auto req_valid = m->input("io_req_valid", 1);
    m->output("io_req_ack", 1);
    m->output("io_res_data", 64);                  // {hit, ppn}
    m->output("io_res_valid", 1);
    auto res_ack = m->input("io_res_ack", 1);
    auto upd_data = m->input("io_upd_data", 64);   // {vpn, ppn}
    auto upd_valid = m->input("io_upd_valid", 1);
    m->output("io_upd_ack", 1);

    // Entry registers.
    std::vector<ExprPtr> valid(kTlbEntries), vpn(kTlbEntries),
        ppn(kTlbEntries);
    for (int i = 0; i < kTlbEntries; i++) {
        valid[i] = m->reg("valid" + std::to_string(i), 1);
        vpn[i] = m->reg("vpn" + std::to_string(i), 32);
        ppn[i] = m->reg("ppn" + std::to_string(i), 32);
    }

    // Combinational lookup: response in the request cycle.
    ExprPtr hit = cst(1, 0);
    ExprPtr out_ppn = cst(32, 0);
    for (int i = 0; i < kTlbEntries; i++) {
        auto h = m->wire("hit" + std::to_string(i),
                         valid[i] & eq(vpn[i], req_data));
        hit = hit | h;
        out_ppn = out_ppn | mux(h, ppn[i], cst(32, 0));
    }
    auto hit_w = m->wire("hit_any", hit);
    auto ppn_w = m->wire("ppn_out", out_ppn);

    m->wire("io_res_valid", req_valid);
    m->wire("io_res_data",
            concat({cst(31, 0), hit_w, ppn_w}));
    // The request completes when the response is taken.
    m->wire("io_req_ack", res_ack);

    // Update port: round-robin victim.
    auto vict = m->reg("vict", 3);
    m->wire("io_upd_ack", cst(1, 1));
    for (int i = 0; i < kTlbEntries; i++) {
        auto sel = upd_valid & eq(vict, cst(3, i));
        m->update("valid" + std::to_string(i), sel, cst(1, 1));
        m->update("vpn" + std::to_string(i), sel,
                  slice(upd_data, 32, 32));
        m->update("ppn" + std::to_string(i), sel,
                  slice(upd_data, 0, 32));
    }
    m->update("vict", upd_valid, vict + cst(3, 1));
    return m;
}

rtl::ModulePtr
buildSetAssocTlbBaseline(int ways, int sets)
{
    int idxbits = log2Exact(sets, "sets");
    int waybits = std::max(log2Exact(ways, "ways"), 1);

    auto m = std::make_shared<Module>();
    m->name = strfmt("tlb_%dw%ds_baseline", ways, sets);

    auto req_data = m->input("io_req_data", 32);   // vpn
    auto req_valid = m->input("io_req_valid", 1);
    m->output("io_req_ack", 1);
    m->output("io_res_data", 64);                  // {hit, ppn}
    m->output("io_res_valid", 1);
    auto res_ack = m->input("io_res_ack", 1);
    auto upd_data = m->input("io_upd_data", 64);   // {vpn, ppn}
    auto upd_valid = m->input("io_upd_valid", 1);
    m->output("io_upd_ack", 1);

    auto idx = m->wire("set_idx", slice(req_data, 0, idxbits));
    auto uvpn = m->wire("upd_vpn", slice(upd_data, 32, 32));
    auto uppn = m->wire("upd_ppn", slice(upd_data, 0, 32));
    auto uidx = m->wire("upd_idx", slice(uvpn, 0, idxbits));

    ExprPtr hit = cst(1, 0);
    ExprPtr out_ppn = cst(32, 0);
    for (int s = 0; s < sets; s++) {
        // One lookup touches one set: the set-select gate keeps the
        // hit cone of an idle or differently-indexed request dark.
        auto ssel = m->wire(strfmt("ssel%d", s),
                            eq(idx, cst(idxbits, s)));
        auto usel = m->wire(strfmt("usel%d", s),
                            upd_valid & eq(uidx, cst(idxbits, s)));
        auto vict = m->reg(strfmt("vict%d", s), waybits);
        // Wrap modulo `ways` explicitly: for ways == 1 the 1-bit
        // counter would otherwise visit 1, where no way exists.
        m->update(strfmt("vict%d", s), usel,
                  (vict + cst(waybits, 1)) &
                      cst(waybits, static_cast<uint64_t>(ways - 1)));
        for (int w = 0; w < ways; w++) {
            std::string e = strfmt("%d_%d", s, w);
            auto valid = m->reg("valid" + e, 1);
            auto vpn = m->reg("vpn" + e, 32);
            auto ppn = m->reg("ppn" + e, 32);
            auto h = m->wire("hit" + e,
                             ssel & valid & eq(vpn, req_data));
            hit = hit | h;
            out_ppn = out_ppn | mux(h, ppn, cst(32, 0));
            auto wsel = usel & eq(vict, cst(waybits, w));
            m->update("valid" + e, wsel, cst(1, 1));
            m->update("vpn" + e, wsel, uvpn);
            m->update("ppn" + e, wsel, uppn);
        }
    }
    auto hit_w = m->wire("hit_any", hit);
    auto ppn_w = m->wire("ppn_out", out_ppn);

    m->wire("io_res_valid", req_valid);
    m->wire("io_res_data", concat({cst(31, 0), hit_w, ppn_w}));
    m->wire("io_req_ack", res_ack);
    m->wire("io_upd_ack", cst(1, 1));
    return m;
}

rtl::ModulePtr
buildPtwBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "ptw_baseline";

    auto req_data = m->input("cpu_req_data", 27);  // vpn (3 x 9 bits)
    auto req_valid = m->input("cpu_req_valid", 1);
    m->output("cpu_req_ack", 1);
    m->output("cpu_res_data", 64);                 // pte or 0 on fault
    m->output("cpu_res_valid", 1);
    auto res_ack = m->input("cpu_res_ack", 1);

    m->output("m_mreq_data", 32);                  // physical address
    m->output("m_mreq_valid", 1);
    auto mreq_ack = m->input("m_mreq_ack", 1);
    auto mres_data = m->input("m_mres_data", 64);  // pte
    auto mres_valid = m->input("m_mres_valid", 1);
    m->output("m_mres_ack", 1);

    // FSM: 0 idle, 1/3/5 send level k, 2/4/6 wait level k, 7 respond.
    auto st = m->reg("st", 3);
    auto va = m->reg("va", 27);
    auto pte = m->reg("pte", 64);
    auto res = m->reg("res", 64);

    auto idle = m->wire("idle", eq(st, cst(3, 0)));
    m->wire("cpu_req_ack", idle);
    auto start = m->wire("start", req_valid & idle);
    m->update("va", start, req_data);
    m->update("st", start, cst(3, 1));

    // Level address computation: base << 12 is the page of the next
    // table; vpn slices select the entry (8-byte PTEs).
    auto base = m->wire("tbl_base",
                        slice(binop(Op::Shl, slice(pte, 10, 20),
                                    cst(5, 12)), 0, 32));
    auto idx1 = m->wire("idx1", slice(va, 18, 9));
    auto idx2 = m->wire("idx2", slice(va, 9, 9));
    auto idx3 = m->wire("idx3", slice(va, 0, 9));

    auto lvl1 = m->wire("addr1",
                        cst(32, 4096) +
                        concat({cst(20, 0), idx1, cst(3, 0)}));
    auto lvl2 = m->wire("addr2",
                        base + concat({cst(20, 0), idx2, cst(3, 0)}));
    auto lvl3 = m->wire("addr3",
                        base + concat({cst(20, 0), idx3, cst(3, 0)}));

    auto sending = m->wire("sending",
                           eq(st, cst(3, 1)) | eq(st, cst(3, 3)) |
                           eq(st, cst(3, 5)));
    m->wire("m_mreq_valid", sending);
    m->wire("m_mreq_data",
            mux(eq(st, cst(3, 1)), lvl1,
                mux(eq(st, cst(3, 3)), lvl2, lvl3)));
    m->update("st", sending & mreq_ack, st + cst(3, 1));

    auto waiting = m->wire("waiting",
                           eq(st, cst(3, 2)) | eq(st, cst(3, 4)) |
                           eq(st, cst(3, 6)));
    m->wire("m_mres_ack", waiting);
    auto got = m->wire("got", waiting & mres_valid);

    // PTE decode: bit 0 = valid, bits 3:1 = permissions (leaf when
    // non-zero), bits 63:10 = PPN.
    auto pte_valid = m->wire("pte_valid", slice(mres_data, 0, 1));
    auto pte_leaf = m->wire("pte_leaf",
                            pte_valid &
                            ne(slice(mres_data, 1, 3), cst(3, 0)));
    auto fault = m->wire("fault", ~pte_valid);
    auto last_level = m->wire("last_level", eq(st, cst(3, 6)));

    m->update("pte", got, mres_data);
    auto finish = m->wire("finish", got & (pte_leaf | fault |
                                           last_level));
    m->update("res", finish,
              mux(fault, cst(64, 0), mres_data));
    m->update("st", finish, cst(3, 7));
    // Descend a level (only when not finishing).
    m->update("st", got & ~finish, st + cst(3, 1));

    auto resp = m->wire("resp", eq(st, cst(3, 7)));
    m->wire("cpu_res_valid", resp);
    m->wire("cpu_res_data", res);
    m->update("st", resp & res_ack, cst(3, 0));
    return m;
}

} // namespace designs
} // namespace anvil
