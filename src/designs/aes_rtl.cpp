/**
 * @file
 * Handwritten round-based AES-128 cipher core (OpenTitan-style
 * unmasked datapath with a LUT S-box), used as the Table 1 baseline.
 *
 * Interface (matches the Anvil compiler's message lowering):
 *   io_req_data[255:0]  = {key[127:0], pt[127:0]} with key in the
 *                         high half, valid/ack handshake;
 *   io_res_data[127:0]  = ciphertext, valid/ack handshake.
 *
 * Latency: 1 load cycle + 10 round cycles, then the response is held
 * until acknowledged (dynamic latency, as in the paper).
 */

#include "designs/designs.h"

#include "codegen/rtl_gen.h"

namespace anvil {
namespace designs {

using namespace rtl;

namespace {

/** Byte i (little-endian) of a wide expression. */
ExprPtr
byteOf(const ExprPtr &e, int i)
{
    return slice(e, 8 * i, 8);
}

ExprPtr
sboxOf(const ExprPtr &b)
{
    return romLookup(aesSboxRom(), b, 8);
}

/** GF(2^8) xtime. */
ExprPtr
xtimeOf(const ExprPtr &b)
{
    auto shifted = slice(binop(Op::Shl, b, cst(4, 1)), 0, 8);
    auto red = mux(slice(b, 7, 1), cst(8, 0x1b), cst(8, 0));
    return shifted ^ red;
}

/** Build the 16 post-SubBytes/ShiftRows bytes of the state. */
std::vector<ExprPtr>
subShift(const ExprPtr &state)
{
    std::vector<ExprPtr> sub(16), out(16);
    for (int i = 0; i < 16; i++)
        sub[i] = sboxOf(byteOf(state, i));
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++)
            out[r + 4 * c] = sub[r + 4 * ((c + r) % 4)];
    return out;
}

/** MixColumns over 16 byte expressions. */
std::vector<ExprPtr>
mixCols(const std::vector<ExprPtr> &s)
{
    std::vector<ExprPtr> out(16);
    for (int c = 0; c < 4; c++) {
        auto a0 = s[4 * c], a1 = s[4 * c + 1];
        auto a2 = s[4 * c + 2], a3 = s[4 * c + 3];
        out[4 * c] = xtimeOf(a0) ^ (xtimeOf(a1) ^ a1) ^ a2 ^ a3;
        out[4 * c + 1] = a0 ^ xtimeOf(a1) ^ (xtimeOf(a2) ^ a2) ^ a3;
        out[4 * c + 2] = a0 ^ a1 ^ xtimeOf(a2) ^ (xtimeOf(a3) ^ a3);
        out[4 * c + 3] = (xtimeOf(a0) ^ a0) ^ a1 ^ a2 ^ xtimeOf(a3);
    }
    return out;
}

/** Pack 16 byte expressions into one 128-bit value (byte 15 high). */
ExprPtr
pack(const std::vector<ExprPtr> &bytes)
{
    std::vector<ExprPtr> hi_first;
    for (int i = 15; i >= 0; i--)
        hi_first.push_back(bytes[i]);
    return concat(hi_first);
}

/** On-the-fly next round key from the current one. */
ExprPtr
nextKey(const ExprPtr &rk, const ExprPtr &rcon)
{
    std::vector<ExprPtr> k(16), nk(16);
    for (int i = 0; i < 16; i++)
        k[i] = byteOf(rk, i);
    ExprPtr t[4] = {
        sboxOf(k[13]) ^ rcon, sboxOf(k[14]), sboxOf(k[15]),
        sboxOf(k[12]),
    };
    for (int i = 0; i < 4; i++)
        nk[i] = k[i] ^ t[i];
    for (int w = 1; w < 4; w++)
        for (int i = 0; i < 4; i++)
            nk[4 * w + i] = nk[4 * (w - 1) + i] ^ k[4 * w + i];
    return pack(nk);
}

} // namespace

rtl::ModulePtr
buildAesBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "aes_baseline";

    auto req_data = m->input("io_req_data", 256);
    auto req_valid = m->input("io_req_valid", 1);
    m->output("io_req_ack", 1);
    m->output("io_res_data", 128);
    m->output("io_res_valid", 1);
    auto res_ack = m->input("io_res_ack", 1);

    auto state = m->reg("state", 128);
    auto rkey = m->reg("rkey", 128);
    auto round = m->reg("round", 4);
    auto busy = m->reg("busy", 1);
    auto pending = m->reg("pending", 1);

    auto ack = m->wire("io_req_ack", ~busy & ~pending);
    auto start = m->wire("start", req_valid & ack);

    auto key = m->wire("key_in", slice(req_data, 128, 128));
    auto pt = m->wire("pt_in", slice(req_data, 0, 128));

    // Round constant ROM.
    auto rcon_tab = std::make_shared<std::vector<BitVec>>();
    const uint8_t rcons[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};
    for (int i = 0; i < 10; i++)
        rcon_tab->push_back(BitVec(8, rcons[i]));
    auto rcon = m->wire("rcon", romLookup(rcon_tab, round, 8));

    // Round datapath.
    std::vector<ExprPtr> sr = subShift(state);
    auto mixed = m->wire("mixed", pack(mixCols(sr)));
    auto last = m->wire("last_round", pack(sr));
    auto nk = m->wire("next_key", nextKey(rkey, rcon));

    auto is_last = m->wire("is_last", eq(round, cst(4, 9)));
    auto round_out = m->wire("round_out",
                             mux(is_last, last, mixed) ^ nk);

    // Control.
    m->update("state", start, pt ^ key);
    m->update("state", busy, round_out);
    m->update("rkey", start, key);
    m->update("rkey", busy, nk);
    m->update("round", start, cst(4, 0));
    m->update("round", busy, round + cst(4, 1));
    m->update("busy", start, cst(1, 1));
    m->update("busy", busy & is_last, cst(1, 0));
    m->update("pending", busy & is_last, cst(1, 1));
    m->update("pending", pending & res_ack, cst(1, 0));

    m->wire("io_res_valid", pending);
    m->wire("io_res_data", state);
    return m;
}

} // namespace designs
} // namespace anvil
