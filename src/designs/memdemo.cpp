/**
 * @file
 * Motivation-figure substrates.
 *
 * Fig. 1: a two-cycle memory and the hazardous Top client that
 * assumes a one-cycle response, producing the wrong output stream
 * (half the addresses skipped).
 *
 * Fig. 4: a cached memory whose latency is 1 cycle on a hit and
 * 3 cycles on a miss, exposed through a valid/ack interface so a
 * dynamically-contracted Anvil client can drive it.
 */

#include "designs/designs.h"

namespace anvil {
namespace designs {

using namespace rtl;

rtl::ModulePtr
buildHazardDemoSystem()
{
    // The memory of Fig. 1: mem[addr] = addr + 0x10 ("Val addr"),
    // registered twice (two-cycle pipeline), no handshake.
    auto mem = std::make_shared<Module>();
    mem->name = "memory2c";
    auto inp = mem->input("inp", 8);
    auto req = mem->input("req", 1);
    mem->output("out", 8);

    // Two-cycle lookup that only advances while `req` is asserted
    // (the paper: "the memory stops processing since the req signal
    // is unset in [1, 2)").
    auto s1 = mem->reg("s1", 8);
    auto busy = mem->reg("busy", 1);
    auto s2 = mem->reg("s2", 8);
    auto latch = mem->wire("latch", req & ~busy);
    auto produce = mem->wire("produce", req & busy);
    mem->update("s1", latch, inp);
    mem->update("busy", latch, cst(1, 1));
    mem->update("busy", produce, cst(1, 0));
    mem->update("s2", produce, s1 + cst(8, 0x10));
    mem->wire("out", s2);

    // Fig. 1 Top: toggles req every cycle; when req is high it drives
    // the next address, expecting the output one cycle later.
    auto top = std::make_shared<Module>();
    top->name = "hazard_top";
    top->output("observed", 8);
    top->output("sampling", 1);
    top->output("req", 1);
    top->output("addr", 8);

    auto phase = top->reg("phase", 1);
    auto address = top->reg("address", 8);
    top->update("phase", cst(1, 1), ~phase);
    auto req_w = top->wire("req", ~phase);
    top->update("address", req_w, address + cst(8, 1));
    top->wire("addr", address);

    Instance inst;
    inst.name = "mem";
    inst.module = mem;
    inst.inputs["inp"] = ref("addr", 8);
    inst.inputs["req"] = ref("req", 1);
    inst.outputs["mem_out"] = "out";
    top->instances.push_back(std::move(inst));

    // Top samples the output in the cycles after a request
    // (phase == 1), assuming single-cycle latency.
    top->wire("observed", ref("mem_out", 8));
    top->wire("sampling", phase);
    return top;
}

rtl::ModulePtr
buildCacheDemoBaseline()
{
    // Cached memory: req/res handshake; a hit answers the next cycle,
    // a miss takes three cycles.  A direct-mapped 4-entry cache over
    // 8-bit addresses; backing value = addr + 0x10.
    auto m = std::make_shared<Module>();
    m->name = "cache_demo";

    auto req_data = m->input("io_req_data", 8);
    auto req_valid = m->input("io_req_valid", 1);
    m->output("io_req_ack", 1);
    m->output("io_res_data", 8);
    m->output("io_res_valid", 1);
    auto res_ack = m->input("io_res_ack", 1);

    // Tags and values for 4 direct-mapped lines.
    std::vector<ExprPtr> tag(4), val(4), vld(4);
    for (int i = 0; i < 4; i++) {
        tag[i] = m->reg("tag" + std::to_string(i), 6);
        val[i] = m->reg("val" + std::to_string(i), 8);
        vld[i] = m->reg("vld" + std::to_string(i), 1);
    }

    auto st = m->reg("st", 2);      // 0 idle, 1 respond, 2-3 miss wait
    auto areg = m->reg("areg", 8);
    auto hitreg = m->reg("hitreg", 1);

    auto idle = m->wire("idle", eq(st, cst(2, 0)));
    m->wire("io_req_ack", idle);

    auto index = m->wire("index", slice(req_data, 0, 2));
    ExprPtr hit = cst(1, 0);
    for (int i = 0; i < 4; i++) {
        hit = hit | (eq(index, cst(2, i)) & vld[i] &
                     eq(tag[i], slice(req_data, 2, 6)));
    }
    auto hit_w = m->wire("hit", hit);

    auto start = m->wire("start", idle & req_valid);
    m->update("areg", start, req_data);
    m->update("hitreg", start, hit_w);
    // Hit: respond next cycle (st=1).  Miss: two extra cycles
    // (st=3 -> 2 -> 1).
    m->update("st", start, mux(hit_w, cst(2, 1), cst(2, 3)));

    auto counting = m->wire("counting",
                            eq(st, cst(2, 2)) | eq(st, cst(2, 3)));
    m->update("st", counting, st - cst(2, 1));

    // On miss completion, fill the line.
    auto fill = m->wire("fill", eq(st, cst(2, 2)));
    auto aidx = m->wire("aidx", slice(areg, 0, 2));
    for (int i = 0; i < 4; i++) {
        auto sel = fill & eq(aidx, cst(2, i));
        m->update("tag" + std::to_string(i), sel, slice(areg, 2, 6));
        m->update("val" + std::to_string(i), sel,
                  areg + cst(8, 0x10));
        m->update("vld" + std::to_string(i), sel, cst(1, 1));
    }

    auto resp = m->wire("resp", eq(st, cst(2, 1)));
    ExprPtr rd = areg + cst(8, 0x10);   // memory value (also on hits)
    m->wire("io_res_valid", resp);
    m->wire("io_res_data", rd);
    m->update("st", resp & res_ack, cst(2, 0));
    return m;
}

} // namespace designs
} // namespace anvil
