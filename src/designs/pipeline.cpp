/**
 * @file
 * Filament-comparison baselines: a statically scheduled 3-stage
 * pipelined ALU and a 4x4 weight-stationary systolic array.
 *
 * Both designs are fully static: one operand set enters per cycle and
 * one result leaves per cycle after the pipeline fill, with no
 * handshake ports (the static sync lowering of §6.2).
 */

#include "designs/designs.h"

#include "support/strings.h"

namespace anvil {
namespace designs {

using namespace rtl;

rtl::ModulePtr
buildPipelinedAluBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "alu_baseline";

    // op layout: {opcode[3:0], b[31:0], a[31:0]}.
    auto op_in = m->input("io_op_data", 68);
    m->output("io_res_data", 32);

    auto s1_a = m->reg("s1_a", 32);
    auto s1_b = m->reg("s1_b", 32);
    auto s1_op = m->reg("s1_op", 4);
    auto s2 = m->reg("s2", 32);
    auto s3 = m->reg("s3", 32);

    auto en = cst(1, 1);
    m->update("s1_a", en, slice(op_in, 0, 32));
    m->update("s1_b", en, slice(op_in, 32, 32));
    m->update("s1_op", en, slice(op_in, 64, 4));

    // Stage 2: execute.
    ExprPtr r = cst(32, 0);
    auto pick = [&](int code, ExprPtr v) {
        r = mux(eq(s1_op, cst(4, code)), std::move(v), r);
    };
    pick(0, s1_a + s1_b);
    pick(1, s1_a - s1_b);
    pick(2, s1_a & s1_b);
    pick(3, s1_a | s1_b);
    pick(4, s1_a ^ s1_b);
    pick(5, binop(Op::Shl, s1_a, slice(s1_b, 0, 5)));
    pick(6, binop(Op::Shr, s1_a, slice(s1_b, 0, 5)));
    pick(7, mux(ult(s1_a, s1_b), cst(32, 1), cst(32, 0)));
    auto exec = m->wire("exec", r);
    m->update("s2", en, exec);

    // Stage 3: writeback.
    m->update("s3", en, s2);
    m->wire("io_res_data", s3);
    return m;
}

rtl::ModulePtr
buildSystolicBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "systolic_baseline";

    constexpr int kN = 4;

    // Activations: one 4 x 8-bit column per cycle (west edge).
    auto act = m->input("io_act_data", kN * 8);
    // Weight load: 16 x 8-bit, dynamic handshake.
    auto wld = m->input("io_wld_data", kN * kN * 8);
    auto wld_v = m->input("io_wld_valid", 1);
    m->output("io_wld_ack", 1);
    // Outputs: the south-edge partial sums, 4 x 32-bit.
    m->output("io_out_data", kN * 32);

    m->wire("io_wld_ack", cst(1, 1));

    // Weight-stationary PE grid.
    std::vector<std::vector<ExprPtr>> w(kN), a(kN), p(kN);
    for (int r = 0; r < kN; r++) {
        w[r].resize(kN);
        a[r].resize(kN);
        p[r].resize(kN);
        for (int c = 0; c < kN; c++) {
            std::string suf = strfmt("%d_%d", r, c);
            w[r][c] = m->reg("w" + suf, 8);
            a[r][c] = m->reg("a" + suf, 8);
            p[r][c] = m->reg("p" + suf, 32);
            m->update("w" + suf, wld_v,
                      slice(wld, 8 * (r * kN + c), 8));
        }
    }

    auto en = cst(1, 1);
    for (int r = 0; r < kN; r++) {
        for (int c = 0; c < kN; c++) {
            std::string suf = strfmt("%d_%d", r, c);
            // Activations flow east.
            ExprPtr a_in = c == 0 ? slice(act, 8 * r, 8) : a[r][c - 1];
            m->update("a" + suf, en, a_in);
            // Partial sums flow south.
            ExprPtr p_in = r == 0 ? cst(32, 0) : p[r - 1][c];
            auto prod = binop(Op::Mul,
                              concat({cst(24, 0), a_in}),
                              concat({cst(24, 0), w[r][c]}));
            m->update("p" + suf, en, p_in + prod);
        }
    }

    std::vector<ExprPtr> outs;
    for (int c = kN - 1; c >= 0; c--)
        outs.push_back(p[kN - 1][c]);
    m->wire("io_out_data", concat(outs));
    return m;
}

} // namespace designs
} // namespace anvil
