/**
 * @file
 * Anvil source programs for the ten Table 1 designs and the paper's
 * figure examples.  The larger, regular designs (TLB, AES, AXI
 * routers, systolic array) are generated programmatically; idioms:
 *
 *  - wide-register storage with shift/mask addressing stands in for
 *    register arrays (the language has scalar registers only);
 *  - `(W'd0 + x) << k` widens before shifting so the result keeps
 *    the wide width;
 *  - `@msg` / `@msg+1` durations encode the paper's dynamic
 *    contracts ([req, req->res), [res, res->res+1), ...).
 */

#include "designs/designs.h"

#include <functional>

#include "support/strings.h"

namespace anvil {
namespace designs {

namespace {

/** Insert-and-extract helpers for wide-register storage idioms. */
std::string
maskedInsert(const std::string &mem, const std::string &ptr,
             int slot_bits, int mem_bits, const std::string &data,
             int ptr_mask)
{
    // mem := (mem & ~(ones << sh)) | ((0+data) << sh)
    std::string ones = strfmt("%d'h%s", mem_bits,
                              std::string(slot_bits / 4, 'f').c_str());
    std::string sh = strfmt("((%d'd0 + (*%s & %d)) << %d)", mem_bits,
                            ptr.c_str(), ptr_mask,
                            __builtin_ctz(slot_bits));
    return strfmt("(*%s & ~(%s << %s)) | ((%d'd0 + %s) << %s)",
                  mem.c_str(), ones.c_str(), sh.c_str(), mem_bits,
                  data.c_str(), sh.c_str());
}

std::string
slotExtract(const std::string &mem, const std::string &ptr,
            int slot_bits, int mem_bits, int ptr_mask)
{
    std::string sh = strfmt("((%d'd0 + (*%s & %d)) << %d)", mem_bits,
                            ptr.c_str(), ptr_mask,
                            __builtin_ctz(slot_bits));
    return strfmt("((shr(*%s, %s))[%d:0])", mem.c_str(), sh.c_str(),
                  slot_bits - 1);
}

/** Shared FIFO generator: depth must be a power of two. */
std::string
fifoSource(const std::string &proc_name, int depth, int width)
{
    int mem_bits = depth * width;
    int ptr_mask = depth - 1;
    int wrap_mask = 2 * depth - 1;

    std::string s;
    s += strfmt(R"(
chan stream_in_ch {
    left enq : (logic[%d]@#1)
}
chan stream_out_ch {
    right deq : (logic[%d]@#1)
}

proc %s(inp : left stream_in_ch, outp : left stream_out_ch) {
    reg mem : logic[%d];
    reg wptr : logic[8];
    reg rptr : logic[8];
)", width, width, proc_name.c_str(), mem_bits);

    s += strfmt(R"(
    loop {
        if (ready(inp.enq)) & (((*wptr - *rptr) & %d) != %d) {
            let d = recv inp.enq >>
            set mem := %s;
            set wptr := *wptr + 1
        } else { cycle 1 }
    }
)", wrap_mask, depth,
                maskedInsert("mem", "wptr", width, mem_bits, "d",
                             ptr_mask).c_str());

    s += strfmt(R"(
    loop {
        if (((*wptr - *rptr) & %d) != 0) {
            send outp.deq (%s) >>
            set rptr := *rptr + 1
        } else { cycle 1 }
    }
}
)", wrap_mask,
                slotExtract("mem", "rptr", width, mem_bits,
                            ptr_mask).c_str());
    return s;
}

} // namespace

std::string
anvilFifoSource()
{
    return fifoSource("fifo", 8, 32);
}

std::string
anvilSpillRegSource()
{
    // A spill register is a two-deep elastic buffer; same generator,
    // depth 2.
    return fifoSource("spill_reg", 2, 32);
}

std::string
anvilStreamFifoSource()
{
    // Passthrough stream FIFO on a single channel.  The enq contract
    // requires the producer to hold data until the deq sync has
    // completed (`@deq+1`), which is exactly the stability
    // requirement the original IP documents but does not enforce
    // (§7.2); with it, the same-cycle fall-through type checks.
    int depth = 8, width = 32, mem_bits = depth * width;
    int ptr_mask = depth - 1, wrap_mask = 2 * depth - 1;
    std::string s = strfmt(R"(
chan stream_ch {
    left enq : (logic[%d]@deq+1),
    right deq : (logic[%d]@#1)
}

proc stream_fifo(io : left stream_ch) {
    reg mem : logic[%d];
    reg wptr : logic[8];
    reg rptr : logic[8];
)", width, width, mem_bits);

    s += strfmt(R"(
    loop {
        if (ready(io.enq)) {
            if ((((*wptr - *rptr) & %d) == 0) & (ready(io.deq))) {
                let d = recv io.enq >>
                send io.deq (d) >>
                cycle 1
            } else {
                if (((*wptr - *rptr) & %d) != %d) {
                    let d = recv io.enq >>
                    set mem := %s;
                    set wptr := *wptr + 1
                } else { cycle 1 }
            }
        } else { cycle 1 }
    }
)", wrap_mask, wrap_mask, depth,
                maskedInsert("mem", "wptr", width, mem_bits, "d",
                             ptr_mask).c_str());

    s += strfmt(R"(
    loop {
        if (((*wptr - *rptr) & %d) != 0) {
            send io.deq (%s) >>
            set rptr := *rptr + 1
        } else { cycle 1 }
    }
}
)", wrap_mask,
                slotExtract("mem", "rptr", width, mem_bits,
                            ptr_mask).c_str());
    return s;
}

std::string
anvilTlbSource()
{
    // 8-entry fully-associative TLB.  Entry layout: {valid, vpn[32],
    // ppn[32]} in a 65-bit register each.  The request stays live
    // until the next request (`@req`), so the combinational lookup
    // result may be forwarded directly (`@req` response contract).
    // The update channel carries a readiness bound (`@dyn#3`): the
    // TLB promises to accept an offered update within three cycles —
    // its update loop never blocks on the environment — which the
    // formal subsystem compiles into an `ack within 3` contract and
    // proves by k-induction.
    std::string s = R"(
chan tlb_ch {
    left req : (logic[32]@req),
    right res : (logic[64]@req),
    left upd : (logic[64]@#1) @dyn#3 - @dyn
}

proc tlb(io : left tlb_ch) {
)";
    for (int i = 0; i < 8; i++)
        s += strfmt("    reg e%d : logic[65];\n", i);
    s += "    reg vict : logic[3];\n";

    // Lookup thread.  The trailing `cycle 1` ends the iteration on a
    // registered event so the loop restarts without a combinational
    // cycle through the handshake wires.
    s += "    loop {\n        let v = recv io.req >>\n";
    for (int i = 0; i < 8; i++) {
        s += strfmt("        let h%d = (((*e%d)[64:64]) == 1) & "
                    "(((*e%d)[63:32]) == v);\n", i, i, i);
    }
    std::string hit = "h0";
    for (int i = 1; i < 8; i++)
        hit = strfmt("(%s | h%d)", hit.c_str(), i);
    s += strfmt("        let hit = %s;\n", hit.c_str());
    std::string ppn = "(64'd0)";
    for (int i = 0; i < 8; i++) {
        ppn = strfmt("(%s | (if h%d { (64'd0 + ((*e%d)[31:0])) } "
                     "else { 64'd0 }))", ppn.c_str(), i, i);
    }
    s += strfmt("        let pp = %s;\n", ppn.c_str());
    s += "        send io.res ((((64'd0 + hit) << 32) | pp)) >>\n";
    s += "        cycle 1\n    }\n";

    // Update thread (round-robin victim; the final entry is the
    // unconditional else so every arm takes the one-cycle write).
    s += "    loop {\n        { let u = recv io.upd >>\n        ";
    for (int i = 0; i < 8; i++) {
        if (i != 7)
            s += strfmt("if (*vict) == %d { set e%d := ((65'd1 << 64) "
                        "| (65'd0 + u)) } else { ", i, i);
        else
            s += strfmt("set e%d := ((65'd1 << 64) | (65'd0 + u))", i);
    }
    for (int i = 0; i < 7; i++)
        s += " }";
    s += ";\n        set vict := *vict + 1 };\n";
    s += "        cycle 1\n    }\n}\n";
    return s;
}

std::string
anvilPtwSource()
{
    // Sv39-style three-level walk.  The CPU holds the VPN until its
    // next request (`@req`); the memory requires addresses to stay
    // stable until its response (`@mres`, the Fig. 5 cache contract);
    // PTEs are valid for one cycle and registered on arrival.
    return R"(
chan ptw_ch {
    left req : (logic[27]@req),
    right res : (logic[64]@req)
}
chan pmem_ch {
    right mreq : (logic[32]@mres),
    left mres : (logic[64]@#1)
}

proc ptw(cpu : left ptw_ch, m : left pmem_ch) {
    reg pte : logic[64];
    loop {
        let v = recv cpu.req >>
        send m.mreq ((4096 + ((32'd0 + v[26:18]) << 3))[31:0]) >>
        let p1 = recv m.mres >>
        set pte := p1 >>
        if (((*pte)[0:0]) == 1) & (((*pte)[3:1]) != 0) {
            send cpu.res (*pte)
        } else { if ((*pte)[0:0]) == 0 {
            send cpu.res (0)
        } else {
            send m.mreq ((((shr(*pte, 10) << 12) +
                          ((64'd0 + v[17:9]) << 3))[31:0])) >>
            let p2 = recv m.mres >>
            set pte := p2 >>
            if (((*pte)[0:0]) == 1) & (((*pte)[3:1]) != 0) {
                send cpu.res (*pte)
            } else { if ((*pte)[0:0]) == 0 {
                send cpu.res (0)
            } else {
                send m.mreq ((((shr(*pte, 10) << 12) +
                              ((64'd0 + v[8:0]) << 3))[31:0])) >>
                let p3 = recv m.mres >>
                set pte := p3 >>
                if (((*pte)[0:0]) == 1) & (((*pte)[3:1]) != 0) {
                    send cpu.res (*pte)
                } else {
                    send cpu.res (0)
                }
            } }
        } }
        >> cycle 1
    }
}
)";
}

namespace {

/** Byte slice of a 128-bit expression string. */
std::string
byteStr(const std::string &e, int i)
{
    return strfmt("(%s[%d:%d])", e.c_str(), 8 * i + 7, 8 * i);
}

/** xtime on an 8-bit expression string. */
std::string
xtimeStr(const std::string &b)
{
    return strfmt("((((%s << 1)[7:0])) ^ (if (%s[7:7]) == 1 "
                  "{ 27 } else { 0 }))", b.c_str(), b.c_str());
}

/** Pack 16 byte expression strings into a 128-bit value. */
std::string
pack128(const std::vector<std::string> &bytes)
{
    std::string acc = "(128'd0)";
    for (int i = 0; i < 16; i++) {
        acc = strfmt("(%s | ((128'd0 + %s) << %d))", acc.c_str(),
                     bytes[i].c_str(), 8 * i);
    }
    return acc;
}

/** SubBytes+ShiftRows over a 128-bit state expression string. */
std::vector<std::string>
subShiftStr(const std::string &st)
{
    std::vector<std::string> sub(16), out(16);
    for (int i = 0; i < 16; i++)
        sub[i] = strfmt("(sbox(%s))", byteStr(st, i).c_str());
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++)
            out[r + 4 * c] = sub[r + 4 * ((c + r) % 4)];
    return out;
}

std::vector<std::string>
mixColsStr(const std::vector<std::string> &sv)
{
    std::vector<std::string> out(16);
    for (int c = 0; c < 4; c++) {
        const std::string &a0 = sv[4 * c], &a1 = sv[4 * c + 1];
        const std::string &a2 = sv[4 * c + 2], &a3 = sv[4 * c + 3];
        auto xt = [](const std::string &x) { return xtimeStr(x); };
        out[4 * c] = strfmt("(((%s ^ (%s ^ %s)) ^ %s) ^ %s)",
                            xt(a0).c_str(), xt(a1).c_str(), a1.c_str(),
                            a2.c_str(), a3.c_str());
        out[4 * c + 1] = strfmt("(((%s ^ %s) ^ (%s ^ %s)) ^ %s)",
                                a0.c_str(), xt(a1).c_str(),
                                xt(a2).c_str(), a2.c_str(), a3.c_str());
        out[4 * c + 2] = strfmt("(((%s ^ %s) ^ %s) ^ (%s ^ %s))",
                                a0.c_str(), a1.c_str(), xt(a2).c_str(),
                                xt(a3).c_str(), a3.c_str());
        out[4 * c + 3] = strfmt("((((%s ^ %s) ^ %s) ^ %s) ^ %s)",
                                xt(a0).c_str(), a0.c_str(), a1.c_str(),
                                a2.c_str(), xt(a3).c_str());
    }
    return out;
}

} // namespace

std::string
anvilAesSource()
{
    // Round-based AES-128 with a single iterated round datapath (as
    // in the OpenTitan core): one round per cycle selected by a round
    // counter, on-the-fly key schedule, dynamic req/res handshake.
    static const int rcons[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                  0x20, 0x40, 0x80, 0x1b, 0x36};
    std::string rcon = "(8'd0)";
    for (int i = 0; i < 10; i++)
        rcon = strfmt("(if (*round) == %d { %d } else { %s })", i,
                      rcons[i], rcon.c_str());

    auto sr = subShiftStr("(*state)");
    std::string mixed = pack128(mixColsStr(sr));
    std::string last = pack128(sr);
    // Key schedule with the per-round rcon mux inlined.
    std::string nk;
    {
        std::vector<std::string> k(16), nkv(16);
        for (int i = 0; i < 16; i++)
            k[i] = byteStr("(*rkey)", i);
        std::string t[4] = {
            strfmt("((sbox(%s)) ^ (%s))", k[13].c_str(), rcon.c_str()),
            strfmt("(sbox(%s))", k[14].c_str()),
            strfmt("(sbox(%s))", k[15].c_str()),
            strfmt("(sbox(%s))", k[12].c_str()),
        };
        for (int i = 0; i < 4; i++)
            nkv[i] = strfmt("(%s ^ %s)", k[i].c_str(), t[i].c_str());
        for (int w = 1; w < 4; w++)
            for (int i = 0; i < 4; i++)
                nkv[4 * w + i] = strfmt("(%s ^ %s)",
                                        nkv[4 * (w - 1) + i].c_str(),
                                        k[4 * w + i].c_str());
        nk = pack128(nkv);
    }

    std::string s = strfmt(R"(
chan aes_ch {
    left req : (logic[256]@req),
    right res : (logic[128]@#1)
}

proc aes(io : left aes_ch) {
    reg state : logic[128];
    reg rkey : logic[128];
    reg round : logic[4];
    reg busy : logic;
    loop {
        {
        if (*busy) == 0 {
            if ready(io.req) {
                let kp = recv io.req >>
                set state := (kp[127:0]) ^ (kp[255:128]);
                set rkey := kp[255:128];
                set round := 0;
                set busy := 1
            } else { cycle 1 }
        } else {
            if (*round) == 9 {
                set state := ((%s) ^ (%s)) >>
                send io.res (*state) >>
                set busy := 0
            } else {
                set state := ((%s) ^ (%s));
                set rkey := (%s);
                set round := *round + 1
            }
        }
        };
        cycle 1
    }
}
)", last.c_str(), nk.c_str(), mixed.c_str(), nk.c_str(), nk.c_str());
    return s;
}

std::string
anvilAxiDemuxSource()
{
    // Channel held from the slave side (left): receives aw/w/ar,
    // sends b/r.  The demux is a slave to the master port and a
    // master (right endpoints) to the slave ports.
    std::string s = R"(
chan axil_ch {
    left aw : (logic[32]@#1),
    left w : (logic[32]@#1),
    right b : (logic[2]@#1),
    left ar : (logic[32]@#1),
    right r : (logic[33]@#1)
}

proc axi_demux(m : left axil_ch)";
    for (int i = 0; i < 8; i++)
        s += strfmt(", s%d : right axil_ch", i);
    s += R"() {
    reg awreg : logic[32];
    reg wreg : logic[32];
    reg breg : logic[2];
    reg arreg : logic[32];
    reg rreg : logic[33];
)";

    // Write path.
    s += R"(
    loop {
        let a = recv m.aw >>
        set awreg := a >>
        let wd = recv m.w >>
        set wreg := wd >>
        {
)";
    for (int i = 0; i < 8; i++) {
        s += strfmt("        if ((*awreg)[31:29]) == %d {\n"
                    "            send s%d.aw (*awreg) >>\n"
                    "            send s%d.w (*wreg) >>\n"
                    "            let bb = recv s%d.b >>\n"
                    "            set breg := bb\n"
                    "        }", i, i, i, i);
        if (i != 7)
            s += " else {\n";
    }
    for (int i = 0; i < 7; i++)
        s += " }";
    s += R"(
        } >>
        send m.b (*breg)
    }
)";

    // Read path.
    s += R"(
    loop {
        let a = recv m.ar >>
        set arreg := a >>
        {
)";
    for (int i = 0; i < 8; i++) {
        s += strfmt("        if ((*arreg)[31:29]) == %d {\n"
                    "            send s%d.ar (*arreg) >>\n"
                    "            let rr = recv s%d.r >>\n"
                    "            set rreg := rr\n"
                    "        }", i, i, i);
        if (i != 7)
            s += " else {\n";
    }
    for (int i = 0; i < 7; i++)
        s += " }";
    s += R"(
        } >>
        send m.r (*rreg)
    }
}
)";
    return s;
}

std::string
anvilAxiMuxSource()
{
    std::string s = R"(
chan axil_ch {
    left aw : (logic[32]@#1),
    left w : (logic[32]@#1),
    right b : (logic[2]@#1),
    left ar : (logic[32]@#1),
    right r : (logic[33]@#1)
}

proc axi_mux(s : right axil_ch)";
    for (int i = 0; i < 8; i++)
        s += strfmt(", m%d : left axil_ch", i);
    s += R"() {
    reg awreg : logic[32];
    reg wreg : logic[32];
    reg breg : logic[2];
    reg wlast : logic[3];
    reg arreg : logic[32];
    reg rreg : logic[33];
    reg rlast : logic[3];
)";

    // Serve helpers (write path): recv aw+w from master k, forward,
    // return b, update the round-robin pointer.
    auto serve_w = [&](int k) {
        return strfmt(
            "            let a = recv m%d.aw >>\n"
            "            set awreg := a >>\n"
            "            let wd = recv m%d.w >>\n"
            "            set wreg := wd >>\n"
            "            send s.aw (*awreg) >>\n"
            "            send s.w (*wreg) >>\n"
            "            let bb = recv s.b >>\n"
            "            set breg := bb >>\n"
            "            send m%d.b (*breg) >>\n"
            "            set wlast := %d\n", k, k, k, k);
    };
    auto serve_r = [&](int k) {
        return strfmt(
            "            let a = recv m%d.ar >>\n"
            "            set arreg := a >>\n"
            "            send s.ar (*arreg) >>\n"
            "            let rr = recv s.r >>\n"
            "            set rreg := rr >>\n"
            "            send m%d.r (*rreg) >>\n"
            "            set rlast := %d\n", k, k, k);
    };

    // Round-robin scan: outer else-if chain on the last-granted
    // index, inner else-if chain scanning in rotated order with a
    // one-cycle idle fallback.
    auto arbiter = [&](const std::string &last, const char *chan_msg,
                       std::function<std::string(int)> serve) {
        std::string body;
        body += "    loop {\n        {\n";
        for (int l = 0; l < 8; l++) {
            body += strfmt("        if (*%s) == %d {\n",
                           last.c_str(), l);
            for (int off = 1; off <= 8; off++) {
                int k = (l + off) % 8;
                body += strfmt("          if ready(m%d.%s) {\n%s"
                               "          } else {\n", k, chan_msg,
                               serve(k).c_str());
            }
            body += "          cycle 1\n";
            for (int off = 0; off < 8; off++)
                body += " }";
            body += "\n        }";
            if (l != 7)
                body += " else {\n";
        }
        for (int l = 0; l < 7; l++)
            body += " }";
        body += "\n        };\n        cycle 1\n    }\n";
        return body;
    };

    s += arbiter("wlast", "aw", serve_w);
    s += arbiter("rlast", "ar", serve_r);
    s += "}\n";
    return s;
}

std::string
anvilPipelinedAluSource()
{
    // Fully static 3-stage pipeline: both messages use static sync
    // modes on both sides, so no handshake ports are generated and
    // one operation enters / one result leaves every cycle.
    return R"(
chan alu_ch {
    left op : (logic[68]@#1) @#1-@#1,
    right res : (logic[32]@#1) @#1-@#1
}

proc alu(io : left alu_ch) {
    reg s1a : logic[32];
    reg s1b : logic[32];
    reg s1op : logic[4];
    reg s2 : logic[32];
    reg s3 : logic[32];
    loop {
        let o = recv io.op >>
        set s1a := o[31:0];
        set s1b := o[63:32];
        set s1op := o[67:64];
        set s2 := (
            if (*s1op) == 0 { *s1a + *s1b } else {
            if (*s1op) == 1 { *s1a - *s1b } else {
            if (*s1op) == 2 { *s1a & *s1b } else {
            if (*s1op) == 3 { *s1a | *s1b } else {
            if (*s1op) == 4 { *s1a ^ *s1b } else {
            if (*s1op) == 5 { (*s1a << ((*s1b)[4:0]))[31:0] } else {
            if (*s1op) == 7 {
                if (*s1a) < (*s1b) { 1 } else { 0 }
            } else { 0 } } } } } } });
        set s3 := *s2 >>
        send io.res (*s3)
    }
}
)";
}

std::string
anvilSystolicSource()
{
    // 4x4 weight-stationary systolic array, one activation column per
    // cycle (static sync), weights loaded over a dynamic channel.
    // The weight-load loop polls `ready` and never waits on any other
    // channel, so its acceptance latency is statically bounded: the
    // `@dyn#3` readiness bound becomes a provable `ack within 3`
    // contract.
    std::string s = R"(
chan sys_in_ch {
    left act : (logic[32]@#1) @#1-@#1,
    left wld : (logic[128]@#1) @dyn#3 - @dyn
}
chan sys_out_ch {
    right out : (logic[128]@#1) @#1-@#1
}

proc systolic(inp : left sys_in_ch, outp : left sys_out_ch) {
)";
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++)
            s += strfmt("    reg w%d_%d : logic[8];\n"
                        "    reg a%d_%d : logic[8];\n"
                        "    reg p%d_%d : logic[32];\n",
                        r, c, r, c, r, c);

    s += "    loop {\n        let x = recv inp.act >>\n";
    std::vector<std::string> stmts;
    for (int r = 0; r < 4; r++) {
        for (int c = 0; c < 4; c++) {
            std::string a_in = c == 0
                ? strfmt("(x[%d:%d])", 8 * r + 7, 8 * r)
                : strfmt("(*a%d_%d)", r, c - 1);
            stmts.push_back(strfmt("set a%d_%d := %s", r, c,
                                   a_in.c_str()));
            std::string p_in = r == 0 ? std::string("(32'd0)")
                : strfmt("(*p%d_%d)", r - 1, c);
            stmts.push_back(strfmt(
                "set p%d_%d := (%s + ((32'd0 + %s) * (32'd0 + (*w%d_%d))))",
                r, c, p_in.c_str(), a_in.c_str(), r, c));
        }
    }
    for (size_t i = 0; i < stmts.size(); i++) {
        s += "        " + stmts[i];
        s += i + 1 < stmts.size() ? ";\n" : " >>\n";
    }
    std::string out = "(128'd0)";
    for (int c = 0; c < 4; c++)
        out = strfmt("(%s | ((128'd0 + (*p3_%d)) << %d))", out.c_str(),
                     c, 32 * c);
    s += strfmt("        send outp.out (%s)\n    }\n", out.c_str());

    // Weight-load thread.
    s += "    loop {\n        { if ready(inp.wld) {\n"
         "            let wv = recv inp.wld >>\n";
    std::vector<std::string> ws;
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++)
            ws.push_back(strfmt("set w%d_%d := (wv[%d:%d])", r, c,
                                8 * (r * 4 + c) + 7, 8 * (r * 4 + c)));
    for (size_t i = 0; i < ws.size(); i++) {
        s += "            " + ws[i];
        s += i + 1 < ws.size() ? ";\n" : "\n";
    }
    s += "        } else { cycle 1 } };\n        cycle 1\n    }\n}\n";
    return s;
}

std::string
anvilTopUnsafeSource()
{
    // Fig. 5 left: the static memory contract requires the address to
    // stay for two cycles after the request sync, and the data is
    // valid for one cycle after the response sync.  Top_Unsafe
    // mutates the address immediately and reads the data a cycle too
    // late: both violations are compile-time errors.
    return R"(
chan memory_ch {
    left req : (logic[8]@#2),
    right res : (logic[8]@#1)
}

proc top_unsafe(mem : right memory_ch) {
    reg address : logic[8];
    reg out : logic[8];
    loop {
        send mem.req (*address) >>
        set address := *address + 1 >>
        let data = recv mem.res >>
        cycle 1 >>
        set out := data
    }
}
)";
}

std::string
anvilTopSafeSource()
{
    // Fig. 5 right: the dynamic cache contract ([req, req->res) /
    // [res, res->res+1)) lets the same client logic type check: the
    // address mutation happens only once the response arrives.
    return R"(
chan cache_ch {
    left req : (logic[8]@res),
    right res : (logic[8]@res+1)
}

proc top_safe(mem : right cache_ch) {
    reg address : logic[8];
    reg acc : logic[8];
    loop {
        send mem.req (*address) >>
        let data = recv mem.res >>
        set acc := *acc + data;
        set address := *address + 1
    }
}
)";
}

std::string
anvilEncryptSource()
{
    // Fig. 6: three violations (noise dead at use, assignment to the
    // loaned r2_key, overlapping enc_res sends).
    return R"(
chan encrypt_ch {
    left enc_req : (logic[8]@enc_res),
    right enc_res : (logic[8]@enc_req)
}
chan rng_ch {
    left rng_req : (logic[8]@#1),
    right rng_res : (logic[8]@#2)
}

proc encrypt(ch1 : left encrypt_ch, ch2 : left rng_ch) {
    reg rd1_ctext : logic[8];
    reg r2_key : logic[8];
    loop {
        let ptext = recv ch1.enc_req;
        let noise = recv ch2.rng_req;
        let r1_key = 25;
        ptext >>
        if ptext != 0 {
            noise >>
            set rd1_ctext := (ptext ^ r1_key) + noise
        } else {
            set rd1_ctext := ptext
        };
        cycle 1 >>
        set r2_key := r1_key ^ noise;
        let ctext_out = *rd1_ctext ^ *r2_key;
        send ch2.rng_res (*r2_key) >>
        send ch1.enc_res (ctext_out) >>
        send ch1.enc_res (r1_key)
    }
}
)";
}

std::string
anvilListing2Source()
{
    // Listing 2 (Appendix A), recast as a contract-proving workload:
    // a request sink whose acceptance loop is statically bounded
    // (`@dyn#3` => `ack within 3`), next to a free-running 32-bit
    // counter that gates the *data* path only.  The counter inflates
    // the packed register state space past any explicit-state BMC
    // budget — exactly the Listing 2 blow-up — while the contract's
    // cone of influence stays a handful of control bits, so the
    // k-induction prover discharges the same obligation in
    // milliseconds.
    return R"(
chan l2_ch {
    left req : (logic[8]@#1) @dyn#3 - @dyn,
    right res : (logic[8]@req)
}

proc listing2(io : left l2_ch) {
    reg cnt : logic[32];
    reg acc : logic[8];
    loop {
        set cnt := *cnt + 1
    }
    loop {
        {
        if ready(io.req) {
            let v = recv io.req >>
            set acc := (*acc ^ (if (*cnt) > 32'h100000 { v }
                                else { 0 })) >>
            cycle 1
        } else { cycle 1 }
        };
        cycle 1
    }
}
)";
}

std::string
anvilListing1Source()
{
    return R"(
chan ch {
    right data : (logic@res),
    left res : (logic@#1)
}
chan ch_s {
    right data : (logic@#1)
}

proc grandchild(ep : left ch_s) {
    reg cnt : logic[32];
    loop {
        set cnt := *cnt + 32'b1
    }
    loop {
        let v = if *cnt > 32'h100000 { 1'b1 } else { 1'b0 };
        send ep.data (v) >>
        cycle 1
    }
}

proc child(ep : left ch) {
    reg r : logic;
    chan ep_sl -- ep_sr : ch_s;
    spawn grandchild(ep_sl);
    loop {
        set r := ~*r >>
        let d = recv ep_sr.data >>
        send ep.data ((*r & d)) >>
        let ack = recv ep.res >>
        cycle 1
    }
}

proc top_l1() {
    chan epl -- epr : ch;
    spawn child(epl);
    loop {
        let d = recv epr.data >>
        cycle 1 >>
        dprint "Value:" >>
        cycle 1 >>
        dprint "Value should be the same:" >>
        cycle 1 >>
        send epr.res (1'b1) >>
        cycle 1
    }
}
)";
}

} // namespace designs
} // namespace anvil
