/**
 * @file
 * The ten evaluation designs of Table 1, each in two forms:
 *
 *  - a handwritten baseline in the structural RTL IR, mirroring the
 *    open-source SystemVerilog (PULP common_cells, CVA6 MMU,
 *    OpenTitan AES, AXI-Lite) and Filament (pipelined ALU, systolic
 *    array) implementations the paper compares against, and
 *  - an Anvil source program compiled by this repository's compiler.
 *
 * Both forms expose the same port names (the Anvil compiler's
 * data/valid/ack lowering), so one workload harness drives either.
 */

#ifndef ANVIL_DESIGNS_DESIGNS_H
#define ANVIL_DESIGNS_DESIGNS_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/rtl.h"

namespace anvil {
namespace designs {

// --- Common Cells (PULP) ------------------------------------------------

/** 8-deep, 32-bit FIFO buffer (fifo_v3 style). */
rtl::ModulePtr buildFifoBaseline();

/** 32-bit spill register (two-deep skid buffer). */
rtl::ModulePtr buildSpillRegBaseline();

/** 8-deep passthrough stream FIFO (fall-through when empty). */
rtl::ModulePtr buildStreamFifoBaseline();

// --- CVA6 MMU -----------------------------------------------------------

/** 8-entry fully-associative TLB with pseudo-random replacement. */
rtl::ModulePtr buildTlbBaseline();

/** Sv39-style three-level page table walker. */
rtl::ModulePtr buildPtwBaseline();

// --- OpenTitan AES ------------------------------------------------------

/** Round-based AES-128 cipher core (encrypt, LUT S-box). */
rtl::ModulePtr buildAesBaseline();

// --- AXI-Lite routers ---------------------------------------------------

/** 1 master -> N slaves demux (address-decoded). */
rtl::ModulePtr buildAxiDemuxBaseline(int n_slaves = 8);

/** N masters -> 1 slave mux with fair (round-robin) arbitration. */
rtl::ModulePtr buildAxiMuxBaseline(int n_masters = 8);

// --- Filament-style pipelined designs ------------------------------------

/** 3-stage statically scheduled pipelined ALU. */
rtl::ModulePtr buildPipelinedAluBaseline();

/** 4x4 weight-stationary systolic array (8-bit MACs). */
rtl::ModulePtr buildSystolicBaseline();

// --- Motivation / figure demos -------------------------------------------

/** Fig. 1: two-cycle memory with the hazardous Top client. */
rtl::ModulePtr buildHazardDemoSystem();

/** Fig. 4: memory with a cache; hit = 1 cycle, miss = 3 cycles. */
rtl::ModulePtr buildCacheDemoBaseline();

// --- Anvil sources -------------------------------------------------------

/** Anvil source text for each design (compiled by compileAnvil). */
std::string anvilFifoSource();
std::string anvilSpillRegSource();
std::string anvilStreamFifoSource();
std::string anvilTlbSource();
std::string anvilPtwSource();
std::string anvilAesSource();
std::string anvilAxiDemuxSource();
std::string anvilAxiMuxSource();
std::string anvilPipelinedAluSource();
std::string anvilSystolicSource();

/** Fig. 5: the unsafe Top against the static memory contract. */
std::string anvilTopUnsafeSource();

/** Fig. 5: the safe Top against the dynamic cache contract. */
std::string anvilTopSafeSource();

/** Fig. 6: the Encrypt process (three violations). */
std::string anvilEncryptSource();

/** Listing 1 (Appendix A): Top / child / grandchild. */
std::string anvilListing1Source();

// --- AES golden model (software) -----------------------------------------

/** FIPS-197 AES-128 block encryption (golden model for tests). */
std::vector<uint8_t> aesEncryptBlock(const std::vector<uint8_t> &key,
                                     const std::vector<uint8_t> &pt);

/** The AES S-box table (shared by model and RTL). */
const uint8_t *aesSbox();

} // namespace designs
} // namespace anvil

#endif // ANVIL_DESIGNS_DESIGNS_H
