/**
 * @file
 * The ten evaluation designs of Table 1, each in two forms:
 *
 *  - a handwritten baseline in the structural RTL IR, mirroring the
 *    open-source SystemVerilog (PULP common_cells, CVA6 MMU,
 *    OpenTitan AES, AXI-Lite) and Filament (pipelined ALU, systolic
 *    array) implementations the paper compares against, and
 *  - an Anvil source program compiled by this repository's compiler.
 *
 * Both forms expose the same port names (the Anvil compiler's
 * data/valid/ack lowering), so one workload harness drives either.
 */

#ifndef ANVIL_DESIGNS_DESIGNS_H
#define ANVIL_DESIGNS_DESIGNS_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/rtl.h"

namespace anvil {
namespace designs {

// --- Common Cells (PULP) ------------------------------------------------

/** 8-deep, 32-bit FIFO buffer (fifo_v3 style). */
rtl::ModulePtr buildFifoBaseline();

/** 32-bit spill register (two-deep skid buffer). */
rtl::ModulePtr buildSpillRegBaseline();

/** 8-deep passthrough stream FIFO (fall-through when empty). */
rtl::ModulePtr buildStreamFifoBaseline();

// --- CVA6 MMU -----------------------------------------------------------

/** 8-entry fully-associative TLB with pseudo-random replacement. */
rtl::ModulePtr buildTlbBaseline();

/**
 * K-way set-associative TLB (`ways` x `sets` entries, same port
 * contract as buildTlbBaseline; both `ways` and `sets` must be
 * powers of two).
 * Lookup indexes one set by the VPN's low bits and compares its ways
 * in parallel; replacement is a per-set round-robin victim counter.
 * At the default 4x64 geometry the flattened design carries ~16k
 * state bits, but a lookup only perturbs one set's comparators —
 * the low-activity profile the event-driven sweep exploits.
 */
rtl::ModulePtr buildSetAssocTlbBaseline(int ways = 4, int sets = 64);

/** Sv39-style three-level page table walker. */
rtl::ModulePtr buildPtwBaseline();

// --- OpenTitan AES ------------------------------------------------------

/** Round-based AES-128 cipher core (encrypt, LUT S-box). */
rtl::ModulePtr buildAesBaseline();

// --- AXI-Lite routers ---------------------------------------------------

/** 1 master -> N slaves demux (address-decoded). */
rtl::ModulePtr buildAxiDemuxBaseline(int n_slaves = 8);

/** N masters -> 1 slave mux with fair (round-robin) arbitration. */
rtl::ModulePtr buildAxiMuxBaseline(int n_masters = 8);

/**
 * N-master/M-slave AXI-Lite crossbar composed from the demux and mux
 * baselines: one address-decoded demux per master, one round-robin
 * mux per slave, fully wired through the instance graph.  Masters
 * face ports `m<i>_*`, slaves `s<j>_*` (the mux slave-side channel
 * set).  `n_masters` must be a power of two and both dimensions at
 * most 8 (the 3-bit select/grant fields of the underlying routers).
 * This is the large low-activity simulation workload: a couple of
 * in-flight transactions touch only their own routers' cones.
 */
rtl::ModulePtr buildAxiXbarBaseline(int n_masters = 4,
                                    int n_slaves = 4);

// --- Filament-style pipelined designs ------------------------------------

/** 3-stage statically scheduled pipelined ALU. */
rtl::ModulePtr buildPipelinedAluBaseline();

/** 4x4 weight-stationary systolic array (8-bit MACs). */
rtl::ModulePtr buildSystolicBaseline();

// --- Motivation / figure demos -------------------------------------------

/** Fig. 1: two-cycle memory with the hazardous Top client. */
rtl::ModulePtr buildHazardDemoSystem();

/** Fig. 4: memory with a cache; hit = 1 cycle, miss = 3 cycles. */
rtl::ModulePtr buildCacheDemoBaseline();

// --- Anvil sources -------------------------------------------------------

/** Anvil source text for each design (compiled by compileAnvil). */
std::string anvilFifoSource();
std::string anvilSpillRegSource();
std::string anvilStreamFifoSource();
std::string anvilTlbSource();
std::string anvilPtwSource();
std::string anvilAesSource();
std::string anvilAxiDemuxSource();
std::string anvilAxiMuxSource();
std::string anvilPipelinedAluSource();
std::string anvilSystolicSource();

/** Fig. 5: the unsafe Top against the static memory contract. */
std::string anvilTopUnsafeSource();

/** Fig. 5: the safe Top against the dynamic cache contract. */
std::string anvilTopSafeSource();

/** Fig. 6: the Encrypt process (three violations). */
std::string anvilEncryptSource();

/** Listing 1 (Appendix A): Top / child / grandchild. */
std::string anvilListing1Source();

/**
 * Listing 2 (Appendix A), as a formal-verification workload: a
 * bounded request sink (`@dyn#3` readiness bound on `io.req`) beside
 * a free-running 32-bit counter that gates only the data path.  The
 * counter blows any explicit-state BMC budget while the contract's
 * cone of influence stays small — the k-induction prover's headline
 * case (docs/formal.md).
 */
std::string anvilListing2Source();

// --- AES golden model (software) -----------------------------------------

/** FIPS-197 AES-128 block encryption (golden model for tests). */
std::vector<uint8_t> aesEncryptBlock(const std::vector<uint8_t> &key,
                                     const std::vector<uint8_t> &pt);

/** The AES S-box table (shared by model and RTL). */
const uint8_t *aesSbox();

} // namespace designs
} // namespace anvil

#endif // ANVIL_DESIGNS_DESIGNS_H
