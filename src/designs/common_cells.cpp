/**
 * @file
 * Handwritten baselines for the PULP common_cells designs of Table 1:
 * FIFO buffer, spill register, and passthrough stream FIFO.
 *
 * These mirror the microarchitecture of the open-source SystemVerilog
 * (fifo_v3, spill_register, stream_fifo with FALL_THROUGH=1) while
 * using this repository's RTL IR, and expose the same valid/ack port
 * names the Anvil compiler generates so one harness drives both.
 */

#include "designs/designs.h"

namespace anvil {
namespace designs {

using namespace rtl;

namespace {

constexpr int kWidth = 32;
constexpr int kDepth = 8;
constexpr int kPtrBits = 4;   // one extra bit for full/empty

} // namespace

rtl::ModulePtr
buildFifoBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "fifo_baseline";

    auto enq_data = m->input("inp_enq_data", kWidth);
    auto enq_valid = m->input("inp_enq_valid", 1);
    m->output("inp_enq_ack", 1);
    m->output("outp_deq_data", kWidth);
    m->output("outp_deq_valid", 1);
    auto deq_ack = m->input("outp_deq_ack", 1);

    auto wptr = m->reg("wptr", kPtrBits);
    auto rptr = m->reg("rptr", kPtrBits);

    auto diff = m->wire("usage", (wptr - rptr) & cst(kPtrBits, 0xf));
    auto full = m->wire("full", eq(diff, cst(kPtrBits, kDepth)));
    auto empty = m->wire("empty", eq(diff, cst(kPtrBits, 0)));

    auto ready = m->wire("inp_enq_ack", ~full);
    auto out_valid = m->wire("outp_deq_valid", ~empty);
    auto push = m->wire("push", enq_valid & ready);
    auto pop = m->wire("pop", deq_ack & out_valid);

    // Storage: one register per slot, write-enabled by the pointer.
    std::vector<ExprPtr> slots;
    for (int i = 0; i < kDepth; i++) {
        auto slot = m->reg("slot" + std::to_string(i), kWidth);
        slots.push_back(slot);
        auto sel = eq(slice(wptr, 0, 3), cst(3, i));
        m->update("slot" + std::to_string(i), push & sel, enq_data);
    }

    // Read mux.
    ExprPtr data = slots[0];
    for (int i = 1; i < kDepth; i++)
        data = mux(eq(slice(rptr, 0, 3), cst(3, i)), slots[i], data);
    m->wire("outp_deq_data", data);

    m->update("wptr", push, wptr + cst(kPtrBits, 1));
    m->update("rptr", pop, rptr + cst(kPtrBits, 1));
    return m;
}

rtl::ModulePtr
buildSpillRegBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "spill_reg_baseline";

    auto in_data = m->input("inp_enq_data", kWidth);
    auto in_valid = m->input("inp_enq_valid", 1);
    m->output("inp_enq_ack", 1);
    m->output("outp_deq_data", kWidth);
    m->output("outp_deq_valid", 1);
    auto out_ack = m->input("outp_deq_ack", 1);

    auto a_data = m->reg("a_data", kWidth);
    auto a_full = m->reg("a_full", 1);
    auto b_data = m->reg("b_data", kWidth);
    auto b_full = m->reg("b_full", 1);

    auto ready = m->wire("inp_enq_ack", ~b_full);
    auto push = m->wire("push", in_valid & ready);
    auto valid_o = m->wire("outp_deq_valid", a_full);
    m->wire("outp_deq_data", a_data);
    auto pop = m->wire("pop", out_ack & a_full);

    // A stage: refilled from B when draining, else from the input.
    auto from_b = m->wire("from_b", pop & b_full);
    auto from_in = m->wire("from_in",
                           push & (~a_full | (pop & ~b_full)));
    m->update("a_data", from_b | from_in, mux(from_b, b_data, in_data));
    m->update("a_full", cst(1, 1),
              from_b | from_in | (a_full & ~pop));

    // B stage: spills when a push arrives while A is busy.
    auto to_b = m->wire("to_b", push & a_full & (~pop | b_full));
    m->update("b_data", to_b, in_data);
    m->update("b_full", cst(1, 1), to_b | (b_full & ~pop));
    return m;
}

rtl::ModulePtr
buildStreamFifoBaseline()
{
    auto m = std::make_shared<Module>();
    m->name = "stream_fifo_baseline";

    auto enq_data = m->input("inp_enq_data", kWidth);
    auto enq_valid = m->input("inp_enq_valid", 1);
    m->output("inp_enq_ack", 1);
    m->output("outp_deq_data", kWidth);
    m->output("outp_deq_valid", 1);
    auto deq_ack = m->input("outp_deq_ack", 1);

    auto wptr = m->reg("wptr", kPtrBits);
    auto rptr = m->reg("rptr", kPtrBits);

    auto diff = m->wire("usage", (wptr - rptr) & cst(kPtrBits, 0xf));
    auto full = m->wire("full", eq(diff, cst(kPtrBits, kDepth)));
    auto empty = m->wire("empty", eq(diff, cst(kPtrBits, 0)));

    // Fall-through: an incoming beat is offered combinationally when
    // the FIFO is empty.
    auto ready = m->wire("inp_enq_ack", ~full);
    auto out_valid = m->wire("outp_deq_valid", ~empty | enq_valid);
    auto passthrough =
        m->wire("passthrough", empty & enq_valid & deq_ack);
    auto push =
        m->wire("push", enq_valid & ready & ~passthrough);
    auto pop = m->wire("pop", deq_ack & ~empty);

    std::vector<ExprPtr> slots;
    for (int i = 0; i < kDepth; i++) {
        auto slot = m->reg("slot" + std::to_string(i), kWidth);
        slots.push_back(slot);
        auto sel = eq(slice(wptr, 0, 3), cst(3, i));
        m->update("slot" + std::to_string(i), push & sel, enq_data);
    }
    ExprPtr data = slots[0];
    for (int i = 1; i < kDepth; i++)
        data = mux(eq(slice(rptr, 0, 3), cst(3, i)), slots[i], data);
    m->wire("outp_deq_data", mux(empty, enq_data, data));

    m->update("wptr", push, wptr + cst(kPtrBits, 1));
    m->update("rptr", pop, rptr + cst(kPtrBits, 1));
    return m;
}

} // namespace designs
} // namespace anvil
