/**
 * @file
 * AXI-Lite router baselines: a 1-master/N-slave demux (address
 * decoded) and an N-master/1-slave mux with fair round-robin
 * arbitration, mirroring the pulp-platform axi_lite_demux/mux used in
 * Table 1.
 *
 * Channels per AXI-Lite port (write + read):
 *   aw (addr, 32) / w (data, 32) / b (resp, 2)
 *   ar (addr, 32) / r (resp+data, 33)
 * All channels use valid/ack handshakes.  The top address bits select
 * the slave in the demux (addr[31:29] for 8 slaves).
 */

#include "designs/designs.h"

#include "support/strings.h"

namespace anvil {
namespace designs {

using namespace rtl;

rtl::ModulePtr
buildAxiDemuxBaseline(int n)
{
    auto m = std::make_shared<Module>();
    m->name = "axi_demux_baseline";

    // Master-facing port.
    auto m_aw = m->input("m_aw_data", 32);
    auto m_aw_v = m->input("m_aw_valid", 1);
    m->output("m_aw_ack", 1);
    auto m_w = m->input("m_w_data", 32);
    auto m_w_v = m->input("m_w_valid", 1);
    m->output("m_w_ack", 1);
    m->output("m_b_data", 2);
    m->output("m_b_valid", 1);
    auto m_b_a = m->input("m_b_ack", 1);
    auto m_ar = m->input("m_ar_data", 32);
    auto m_ar_v = m->input("m_ar_valid", 1);
    m->output("m_ar_ack", 1);
    m->output("m_r_data", 33);
    m->output("m_r_valid", 1);
    auto m_r_a = m->input("m_r_ack", 1);

    // Slave-facing ports.
    std::vector<ExprPtr> s_aw_a(n), s_w_a(n), s_b(n), s_b_v(n);
    std::vector<ExprPtr> s_ar_a(n), s_r(n), s_r_v(n);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("s%d", i);
        m->output(p + "_aw_data", 32);
        m->output(p + "_aw_valid", 1);
        s_aw_a[i] = m->input(p + "_aw_ack", 1);
        m->output(p + "_w_data", 32);
        m->output(p + "_w_valid", 1);
        s_w_a[i] = m->input(p + "_w_ack", 1);
        s_b[i] = m->input(p + "_b_data", 2);
        s_b_v[i] = m->input(p + "_b_valid", 1);
        m->output(p + "_b_ack", 1);
        m->output(p + "_ar_data", 32);
        m->output(p + "_ar_valid", 1);
        s_ar_a[i] = m->input(p + "_ar_ack", 1);
        s_r[i] = m->input(p + "_r_data", 33);
        s_r_v[i] = m->input(p + "_r_valid", 1);
        m->output(p + "_r_ack", 1);
    }

    int selbits = 3;

    // ---- Write path FSM: 0 idle, 1 fwd aw, 2 fwd w, 3 wait b,
    //      4 resp b.
    auto wst = m->reg("wst", 3);
    auto awreg = m->reg("awreg", 32);
    auto wreg = m->reg("wreg", 32);
    auto breg = m->reg("breg", 2);
    auto wsel = m->wire("wsel", slice(awreg, 29, selbits));

    auto widle = m->wire("widle", eq(wst, cst(3, 0)));
    m->wire("m_aw_ack", widle);
    m->update("awreg", widle & m_aw_v, m_aw);
    m->update("wst", widle & m_aw_v, cst(3, 1));

    // Accept W once AW is latched.
    auto w_acc = m->wire("w_acc", eq(wst, cst(3, 1)));
    m->wire("m_w_ack", w_acc & m_w_v);
    m->update("wreg", w_acc & m_w_v, m_w);
    m->update("wst", w_acc & m_w_v, cst(3, 2));

    auto fwd_aw = m->wire("fwd_awst", eq(wst, cst(3, 2)));
    ExprPtr aw_acked = cst(1, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("s%d", i);
        auto sel = eq(m->wire(strfmt("wsel_is%d", i),
                              eq(wsel, cst(selbits, i))), cst(1, 1));
        m->wire(p + "_aw_data", awreg);
        m->wire(p + "_aw_valid", fwd_aw & sel);
        m->wire(p + "_w_data", wreg);
        m->wire(p + "_w_valid", fwd_aw & sel);
        aw_acked = aw_acked | (sel & s_aw_a[i] & s_w_a[i]);
    }
    auto aw_ack_w = m->wire("aw_acked", aw_acked);
    m->update("wst", fwd_aw & aw_ack_w, cst(3, 3));

    auto wait_b = m->wire("wait_b", eq(wst, cst(3, 3)));
    ExprPtr b_got = cst(1, 0);
    ExprPtr b_mux = cst(2, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("s%d", i);
        auto sel = eq(wsel, cst(selbits, i));
        m->wire(p + "_b_ack", wait_b & sel);
        b_got = b_got | (sel & s_b_v[i]);
        b_mux = mux(sel, s_b[i], b_mux);
    }
    auto b_got_w = m->wire("b_got", b_got);
    m->update("breg", wait_b & b_got_w, b_mux);
    m->update("wst", wait_b & b_got_w, cst(3, 4));

    auto resp_b = m->wire("resp_b", eq(wst, cst(3, 4)));
    m->wire("m_b_valid", resp_b);
    m->wire("m_b_data", breg);
    m->update("wst", resp_b & m_b_a, cst(3, 0));

    // ---- Read path FSM: 0 idle, 1 fwd ar, 2 wait r, 3 resp r.
    auto rst = m->reg("rst", 2);
    auto arreg = m->reg("arreg", 32);
    auto rreg = m->reg("rreg", 33);
    auto rsel = m->wire("rsel", slice(arreg, 29, selbits));

    auto ridle = m->wire("ridle", eq(rst, cst(2, 0)));
    m->wire("m_ar_ack", ridle);
    m->update("arreg", ridle & m_ar_v, m_ar);
    m->update("rst", ridle & m_ar_v, cst(2, 1));

    auto fwd_ar = m->wire("fwd_ar", eq(rst, cst(2, 1)));
    ExprPtr ar_acked = cst(1, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("s%d", i);
        auto sel = eq(rsel, cst(selbits, i));
        m->wire(p + "_ar_data", arreg);
        m->wire(p + "_ar_valid", fwd_ar & sel);
        ar_acked = ar_acked | (sel & s_ar_a[i]);
    }
    auto ar_ack_w = m->wire("ar_acked", ar_acked);
    m->update("rst", fwd_ar & ar_ack_w, cst(2, 2));

    auto wait_r = m->wire("wait_r", eq(rst, cst(2, 2)));
    ExprPtr r_got = cst(1, 0);
    ExprPtr r_mux = cst(33, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("s%d", i);
        auto sel = eq(rsel, cst(selbits, i));
        m->wire(p + "_r_ack", wait_r & sel);
        r_got = r_got | (sel & s_r_v[i]);
        r_mux = mux(sel, s_r[i], r_mux);
    }
    auto r_got_w = m->wire("r_got", r_got);
    m->update("rreg", wait_r & r_got_w, r_mux);
    m->update("rst", wait_r & r_got_w, cst(2, 3));

    auto resp_r = m->wire("resp_r", eq(rst, cst(2, 3)));
    m->wire("m_r_valid", resp_r);
    m->wire("m_r_data", rreg);
    m->update("rst", resp_r & m_r_a, cst(2, 0));
    return m;
}

rtl::ModulePtr
buildAxiXbarBaseline(int n_masters, int n_slaves)
{
    auto m = std::make_shared<Module>();
    m->name = strfmt("axi_xbar_%dx%d", n_masters, n_slaves);

    // Shared child modules: one demux shape for every master, one
    // mux shape for every slave.
    rtl::ModulePtr demux = buildAxiDemuxBaseline(n_slaves);
    rtl::ModulePtr muxm = buildAxiMuxBaseline(n_masters);

    // Top-level master-facing ports (the demux master contract).
    for (int i = 0; i < n_masters; i++) {
        std::string p = strfmt("m%d", i);
        m->input(p + "_aw_data", 32);
        m->input(p + "_aw_valid", 1);
        m->output(p + "_aw_ack", 1);
        m->input(p + "_w_data", 32);
        m->input(p + "_w_valid", 1);
        m->output(p + "_w_ack", 1);
        m->output(p + "_b_data", 2);
        m->output(p + "_b_valid", 1);
        m->input(p + "_b_ack", 1);
        m->input(p + "_ar_data", 32);
        m->input(p + "_ar_valid", 1);
        m->output(p + "_ar_ack", 1);
        m->output(p + "_r_data", 33);
        m->output(p + "_r_valid", 1);
        m->input(p + "_r_ack", 1);
    }
    // Top-level slave-facing ports (the mux slave contract).
    for (int j = 0; j < n_slaves; j++) {
        std::string p = strfmt("s%d", j);
        m->output(p + "_aw_data", 32);
        m->output(p + "_aw_valid", 1);
        m->input(p + "_aw_ack", 1);
        m->output(p + "_w_data", 32);
        m->output(p + "_w_valid", 1);
        m->input(p + "_w_ack", 1);
        m->input(p + "_b_data", 2);
        m->input(p + "_b_valid", 1);
        m->output(p + "_b_ack", 1);
        m->output(p + "_ar_data", 32);
        m->output(p + "_ar_valid", 1);
        m->input(p + "_ar_ack", 1);
        m->input(p + "_r_data", 33);
        m->input(p + "_r_valid", 1);
        m->output(p + "_r_ack", 1);
    }

    // Demux d<i> per master: master side from the top ports, slave
    // side wired to mux x<j>'s per-master channel <i>.  The internal
    // channels cross through parent-scope alias wires
    // d<i>_s<j>_* (demux outputs) and x<j>_m<i>_* (mux outputs).
    for (int i = 0; i < n_masters; i++) {
        std::string mp = strfmt("m%d", i);
        Instance d;
        d.name = strfmt("d%d", i);
        d.module = demux;
        d.inputs["m_aw_data"] = ref(mp + "_aw_data", 32);
        d.inputs["m_aw_valid"] = ref(mp + "_aw_valid", 1);
        d.inputs["m_w_data"] = ref(mp + "_w_data", 32);
        d.inputs["m_w_valid"] = ref(mp + "_w_valid", 1);
        d.inputs["m_b_ack"] = ref(mp + "_b_ack", 1);
        d.inputs["m_ar_data"] = ref(mp + "_ar_data", 32);
        d.inputs["m_ar_valid"] = ref(mp + "_ar_valid", 1);
        d.inputs["m_r_ack"] = ref(mp + "_r_ack", 1);
        d.outputs[mp + "_aw_ack"] = "m_aw_ack";
        d.outputs[mp + "_w_ack"] = "m_w_ack";
        d.outputs[mp + "_b_data"] = "m_b_data";
        d.outputs[mp + "_b_valid"] = "m_b_valid";
        d.outputs[mp + "_ar_ack"] = "m_ar_ack";
        d.outputs[mp + "_r_data"] = "m_r_data";
        d.outputs[mp + "_r_valid"] = "m_r_valid";
        for (int j = 0; j < n_slaves; j++) {
            std::string sp = strfmt("s%d", j);
            std::string x = strfmt("x%d_m%d", j, i);
            std::string di = strfmt("d%d_s%d", i, j);
            d.inputs[sp + "_aw_ack"] = ref(x + "_aw_ack", 1);
            d.inputs[sp + "_w_ack"] = ref(x + "_w_ack", 1);
            d.inputs[sp + "_b_data"] = ref(x + "_b_data", 2);
            d.inputs[sp + "_b_valid"] = ref(x + "_b_valid", 1);
            d.inputs[sp + "_ar_ack"] = ref(x + "_ar_ack", 1);
            d.inputs[sp + "_r_data"] = ref(x + "_r_data", 33);
            d.inputs[sp + "_r_valid"] = ref(x + "_r_valid", 1);
            d.outputs[di + "_aw_data"] = sp + "_aw_data";
            d.outputs[di + "_aw_valid"] = sp + "_aw_valid";
            d.outputs[di + "_w_data"] = sp + "_w_data";
            d.outputs[di + "_w_valid"] = sp + "_w_valid";
            d.outputs[di + "_b_ack"] = sp + "_b_ack";
            d.outputs[di + "_ar_data"] = sp + "_ar_data";
            d.outputs[di + "_ar_valid"] = sp + "_ar_valid";
            d.outputs[di + "_r_ack"] = sp + "_r_ack";
        }
        m->instances.push_back(std::move(d));
    }

    for (int j = 0; j < n_slaves; j++) {
        std::string sp = strfmt("s%d", j);
        Instance x;
        x.name = strfmt("x%d", j);
        x.module = muxm;
        x.inputs["s_aw_ack"] = ref(sp + "_aw_ack", 1);
        x.inputs["s_w_ack"] = ref(sp + "_w_ack", 1);
        x.inputs["s_b_data"] = ref(sp + "_b_data", 2);
        x.inputs["s_b_valid"] = ref(sp + "_b_valid", 1);
        x.inputs["s_ar_ack"] = ref(sp + "_ar_ack", 1);
        x.inputs["s_r_data"] = ref(sp + "_r_data", 33);
        x.inputs["s_r_valid"] = ref(sp + "_r_valid", 1);
        x.outputs[sp + "_aw_data"] = "s_aw_data";
        x.outputs[sp + "_aw_valid"] = "s_aw_valid";
        x.outputs[sp + "_w_data"] = "s_w_data";
        x.outputs[sp + "_w_valid"] = "s_w_valid";
        x.outputs[sp + "_b_ack"] = "s_b_ack";
        x.outputs[sp + "_ar_data"] = "s_ar_data";
        x.outputs[sp + "_ar_valid"] = "s_ar_valid";
        x.outputs[sp + "_r_ack"] = "s_r_ack";
        for (int i = 0; i < n_masters; i++) {
            std::string mp = strfmt("m%d", i);
            std::string di = strfmt("d%d_s%d", i, j);
            std::string xm = strfmt("x%d_m%d", j, i);
            x.inputs[mp + "_aw_data"] = ref(di + "_aw_data", 32);
            x.inputs[mp + "_aw_valid"] = ref(di + "_aw_valid", 1);
            x.inputs[mp + "_w_data"] = ref(di + "_w_data", 32);
            x.inputs[mp + "_w_valid"] = ref(di + "_w_valid", 1);
            x.inputs[mp + "_b_ack"] = ref(di + "_b_ack", 1);
            x.inputs[mp + "_ar_data"] = ref(di + "_ar_data", 32);
            x.inputs[mp + "_ar_valid"] = ref(di + "_ar_valid", 1);
            x.inputs[mp + "_r_ack"] = ref(di + "_r_ack", 1);
            x.outputs[xm + "_aw_ack"] = mp + "_aw_ack";
            x.outputs[xm + "_w_ack"] = mp + "_w_ack";
            x.outputs[xm + "_b_data"] = mp + "_b_data";
            x.outputs[xm + "_b_valid"] = mp + "_b_valid";
            x.outputs[xm + "_ar_ack"] = mp + "_ar_ack";
            x.outputs[xm + "_r_data"] = mp + "_r_data";
            x.outputs[xm + "_r_valid"] = mp + "_r_valid";
        }
        m->instances.push_back(std::move(x));
    }
    return m;
}

rtl::ModulePtr
buildAxiMuxBaseline(int n)
{
    auto m = std::make_shared<Module>();
    m->name = "axi_mux_baseline";

    std::vector<ExprPtr> m_aw(n), m_aw_v(n), m_w(n), m_w_v(n),
        m_b_a(n), m_ar(n), m_ar_v(n), m_r_a(n);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("m%d", i);
        m_aw[i] = m->input(p + "_aw_data", 32);
        m_aw_v[i] = m->input(p + "_aw_valid", 1);
        m->output(p + "_aw_ack", 1);
        m_w[i] = m->input(p + "_w_data", 32);
        m_w_v[i] = m->input(p + "_w_valid", 1);
        m->output(p + "_w_ack", 1);
        m->output(p + "_b_data", 2);
        m->output(p + "_b_valid", 1);
        m_b_a[i] = m->input(p + "_b_ack", 1);
        m_ar[i] = m->input(p + "_ar_data", 32);
        m_ar_v[i] = m->input(p + "_ar_valid", 1);
        m->output(p + "_ar_ack", 1);
        m->output(p + "_r_data", 33);
        m->output(p + "_r_valid", 1);
        m_r_a[i] = m->input(p + "_r_ack", 1);
    }
    m->output("s_aw_data", 32);
    m->output("s_aw_valid", 1);
    auto s_aw_a = m->input("s_aw_ack", 1);
    m->output("s_w_data", 32);
    m->output("s_w_valid", 1);
    auto s_w_a = m->input("s_w_ack", 1);
    auto s_b = m->input("s_b_data", 2);
    auto s_b_v = m->input("s_b_valid", 1);
    m->output("s_b_ack", 1);
    m->output("s_ar_data", 32);
    m->output("s_ar_valid", 1);
    auto s_ar_a = m->input("s_ar_ack", 1);
    auto s_r = m->input("s_r_data", 33);
    auto s_r_v = m->input("s_r_valid", 1);
    m->output("s_r_ack", 1);

    int gb = 3;

    // ---- Write path with round-robin arbitration.
    auto wst = m->reg("wst", 3);   // 0 arb, 1 fwd aw+w, 2 wait b,
                                   // 3 resp b
    auto wgrant = m->reg("wgrant", gb);
    auto wlast = m->reg("wlast", gb);
    auto awreg = m->reg("awreg", 32);
    auto wreg = m->reg("wreg", 32);
    auto breg = m->reg("breg", 2);

    // Fair grant: the first requesting master after wlast.
    ExprPtr grant = wlast;   // fallback (no requester)
    ExprPtr any = cst(1, 0);
    for (int off = n; off >= 1; off--) {
        // Candidate index (wlast + off) mod n, scanned from farthest
        // to nearest so the nearest requester wins the mux chain.
        ExprPtr idx = m->wire(strfmt("wcand%d", off),
                              (wlast + cst(gb, off)) &
                              cst(gb, n - 1));
        ExprPtr v = cst(1, 0);
        for (int i = 0; i < n; i++)
            v = v | (eq(idx, cst(gb, i)) & m_aw_v[i]);
        auto vw = m->wire(strfmt("wcandv%d", off), v);
        grant = mux(vw, idx, grant);
        any = any | vw;
    }
    auto grant_w = m->wire("wgrant_next", grant);
    auto any_w = m->wire("w_any", any);

    auto warb = m->wire("warb", eq(wst, cst(3, 0)));
    m->update("wgrant", warb & any_w, grant_w);
    m->update("wst", warb & any_w, cst(3, 1));

    // Accept AW and W from the granted master.
    auto wacc = m->wire("wacc", eq(wst, cst(3, 1)));
    ExprPtr got_aw = cst(1, 0);
    ExprPtr aw_mux = cst(32, 0);
    ExprPtr w_mux = cst(32, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("m%d", i);
        auto sel = eq(wgrant, cst(gb, i));
        m->wire(p + "_aw_ack", wacc & sel & m_w_v[i]);
        m->wire(p + "_w_ack", wacc & sel & m_aw_v[i]);
        got_aw = got_aw | (sel & m_aw_v[i] & m_w_v[i]);
        aw_mux = mux(sel, m_aw[i], aw_mux);
        w_mux = mux(sel, m_w[i], w_mux);
    }
    auto got_aw_w = m->wire("got_aw", got_aw);
    m->update("awreg", wacc & got_aw_w, aw_mux);
    m->update("wreg", wacc & got_aw_w, w_mux);
    m->update("wst", wacc & got_aw_w, cst(3, 2));

    // Forward to the slave, wait for B, return it.
    auto wfwd = m->wire("wfwd", eq(wst, cst(3, 2)));
    m->wire("s_aw_data", awreg);
    m->wire("s_aw_valid", wfwd);
    m->wire("s_w_data", wreg);
    m->wire("s_w_valid", wfwd);
    auto fwd_done = m->wire("wfwd_done", wfwd & s_aw_a & s_w_a);
    m->update("wst", fwd_done, cst(3, 3));

    auto wwait = m->wire("wwait", eq(wst, cst(3, 3)));
    m->wire("s_b_ack", wwait);
    m->update("breg", wwait & s_b_v, s_b);
    m->update("wst", wwait & s_b_v, cst(3, 4));

    auto wresp = m->wire("wresp", eq(wst, cst(3, 4)));
    ExprPtr b_taken = cst(1, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("m%d", i);
        auto sel = eq(wgrant, cst(gb, i));
        m->wire(p + "_b_valid", wresp & sel);
        m->wire(p + "_b_data", breg);
        b_taken = b_taken | (sel & m_b_a[i]);
    }
    auto b_taken_w = m->wire("b_taken", b_taken);
    m->update("wlast", wresp & b_taken_w, wgrant);
    m->update("wst", wresp & b_taken_w, cst(3, 0));

    // ---- Read path with its own round-robin arbiter.
    auto rst = m->reg("rst", 2);   // 0 arb, 1 fwd ar, 2 wait r,
                                   // 3 resp r
    auto rgrant = m->reg("rgrant", gb);
    auto rlast = m->reg("rlast", gb);
    auto arreg = m->reg("arreg", 32);
    auto rreg = m->reg("rreg", 33);
    auto rpend = m->reg("rpend", 1);

    ExprPtr rgr = rlast;
    ExprPtr rany = cst(1, 0);
    for (int off = n; off >= 1; off--) {
        ExprPtr idx = m->wire(strfmt("rcand%d", off),
                              (rlast + cst(gb, off)) &
                              cst(gb, n - 1));
        ExprPtr v = cst(1, 0);
        for (int i = 0; i < n; i++)
            v = v | (eq(idx, cst(gb, i)) & m_ar_v[i]);
        auto vw = m->wire(strfmt("rcandv%d", off), v);
        rgr = mux(vw, idx, rgr);
        rany = rany | vw;
    }
    auto rgr_w = m->wire("rgrant_next", rgr);
    auto rany_w = m->wire("r_any", rany);

    // Do not re-arbitrate while a response is still pending: rgrant
    // routes the in-flight R beat back to its master.
    auto rarb = m->wire("rarb", eq(rst, cst(2, 0)) & ~rpend);
    m->update("rgrant", rarb & rany_w, rgr_w);
    m->update("rst", rarb & rany_w, cst(2, 1));

    auto racc = m->wire("racc", eq(rst, cst(2, 1)));
    ExprPtr got_ar = cst(1, 0);
    ExprPtr ar_mux = cst(32, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("m%d", i);
        auto sel = eq(rgrant, cst(gb, i));
        m->wire(p + "_ar_ack", racc & sel);
        got_ar = got_ar | (sel & m_ar_v[i]);
        ar_mux = mux(sel, m_ar[i], ar_mux);
    }
    auto got_ar_w = m->wire("got_ar", got_ar);
    m->update("arreg", racc & got_ar_w, ar_mux);
    m->update("rst", racc & got_ar_w, cst(2, 2));

    auto rfwd = m->wire("rfwd", eq(rst, cst(2, 2)));
    m->wire("s_ar_data", arreg);
    m->wire("s_ar_valid", rfwd);
    m->update("rst", rfwd & s_ar_a, cst(2, 3));

    auto rwait = m->wire("rwait", eq(rst, cst(2, 3)));
    m->wire("s_r_ack", rwait);
    m->update("rreg", rwait & s_r_v, s_r);
    // Response delivery overlaps the return to the arbitration state.
    m->update("rpend", rwait & s_r_v, cst(1, 1));
    m->update("rst", rwait & s_r_v, cst(2, 0));

    ExprPtr r_taken = cst(1, 0);
    for (int i = 0; i < n; i++) {
        std::string p = strfmt("m%d", i);
        auto sel = eq(rgrant, cst(gb, i));
        m->wire(p + "_r_valid", rpend & sel);
        m->wire(p + "_r_data", rreg);
        r_taken = r_taken | (sel & m_r_a[i]);
    }
    auto r_taken_w = m->wire("r_taken", r_taken);
    m->update("rpend", rpend & r_taken_w, cst(1, 0));
    m->update("rlast", rpend & r_taken_w, rgrant);
    return m;
}

} // namespace designs
} // namespace anvil
