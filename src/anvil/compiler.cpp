#include "anvil/compiler.h"

#include <functional>
#include <set>

#include "codegen/rtl_gen.h"
#include "codegen/sv_printer.h"
#include "ir/elaborate.h"
#include "lang/parser.h"
#include "support/strings.h"

namespace anvil {

namespace {

/** Topologically order processes so spawned children come first. */
std::vector<const ProcDef *>
spawnOrder(const Program &prog, DiagEngine &diags)
{
    std::vector<const ProcDef *> order;
    std::set<std::string> done;
    std::set<std::string> visiting;

    std::function<void(const ProcDef &)> visit =
        [&](const ProcDef &p) {
            if (done.count(p.name))
                return;
            if (!visiting.insert(p.name).second) {
                diags.error(strfmt("recursive spawn cycle through '%s'",
                                   p.name.c_str()), p.loc);
                return;
            }
            for (const auto &s : p.spawns) {
                const ProcDef *child = prog.findProc(s.proc_name);
                if (child)
                    visit(*child);
                else
                    diags.error(strfmt("spawn of unknown process '%s'",
                                       s.proc_name.c_str()), s.loc);
            }
            visiting.erase(p.name);
            done.insert(p.name);
            order.push_back(&p);
        };

    for (const auto &[name, p] : prog.procs)
        visit(p);
    return order;
}

} // namespace

CompileOutput
compileAnvil(const std::string &source, const CompileOptions &opts)
{
    CompileOutput out;
    out.program = parseAnvil(source, out.diags);
    if (out.diags.hasErrors())
        return out;

    auto order = spawnOrder(out.program, out.diags);
    if (out.diags.hasErrors())
        return out;

    for (const ProcDef *proc : order) {
        // Type check on the two-iteration unrolling.
        ProcIR check_ir = elaborateProc(out.program, *proc, out.diags, 2);
        out.checks[proc->name] = checkProc(check_ir, out.diags);
    }

    if (opts.codegen) {
        // Generate code even for unsafe designs (the hazard benches
        // simulate rejected programs); `codegen = false` is the
        // check-only mode.
        DiagEngine gen_diags;
        for (const ProcDef *proc : order) {
            ProcIR gen_ir = elaborateProc(out.program, *proc, gen_diags,
                                          1);
            if (opts.optimize) {
                OptStats total;
                bool first = true;
                for (auto &t : gen_ir.threads) {
                    OptStats s = optimizeEventGraph(t->graph);
                    if (first) {
                        total = s;
                        first = false;
                    } else {
                        total.before += s.before;
                        total.after += s.after;
                        for (const auto &[k, v] : s.merged_by_pass)
                            total.merged_by_pass[k] += v;
                    }
                }
                out.opt_stats[proc->name] = total;
            }
            out.modules[proc->name] =
                generateRtl(gen_ir, out.modules, gen_diags);
        }
        for (const auto &d : gen_diags.all())
            if (d.severity == Severity::Error)
                out.diags.error(d.message, d.loc);
    }

    std::string top = opts.top;
    if (top.empty() && !order.empty())
        top = order.back()->name;
    out.top = top;
    if (out.modules.count(top))
        out.systemverilog =
            printSystemVerilogHierarchy(*out.modules[top]);

    out.ok = !out.diags.hasErrors();
    return out;
}

} // namespace anvil
