/**
 * @file
 * The Anvil compiler facade: source text in, diagnostics + generated
 * SystemVerilog + simulatable RTL out.
 *
 * Pipeline (paper §6): parse -> elaborate (event-graph construction,
 * two-iteration unrolled) -> type check -> re-elaborate single
 * iteration -> event-graph optimization -> FSM generation -> RTL IR
 * and SystemVerilog.
 */

#ifndef ANVIL_ANVIL_COMPILER_H
#define ANVIL_ANVIL_COMPILER_H

#include <map>
#include <memory>
#include <string>

#include "ir/optimize.h"
#include "lang/ast.h"
#include "rtl/rtl.h"
#include "support/diag.h"
#include "types/checker.h"

namespace anvil {

/** Everything the compiler produces for one source buffer. */
struct CompileOutput
{
    bool ok = false;
    DiagEngine diags;
    Program program;

    /** Per-process type-check results (traces, loan tables). */
    std::map<std::string, CheckResult> checks;

    /** Per-process generated RTL (single-iteration, optimized). */
    std::map<std::string, rtl::ModulePtr> modules;

    /** Per-process event-graph optimization statistics. */
    std::map<std::string, OptStats> opt_stats;

    /** Generated SystemVerilog for the full hierarchy of `top`. */
    std::string systemverilog;

    /** The resolved top process (explicit or last defined). */
    std::string top;

    rtl::ModulePtr module(const std::string &proc) const
    {
        auto it = modules.find(proc);
        return it != modules.end() ? it->second : nullptr;
    }
};

/** Compiler options. */
struct CompileOptions
{
    std::string top;          ///< top process (default: last defined)
    bool optimize = true;     ///< run the Fig. 8 passes
    bool codegen = true;      ///< generate RTL even to observe checks
};

/** Run the full pipeline over one source buffer. */
CompileOutput compileAnvil(const std::string &source,
                           const CompileOptions &opts = {});

} // namespace anvil

#endif // ANVIL_ANVIL_COMPILER_H
