/**
 * @file
 * anvilc — the Anvil compiler command-line driver.
 *
 * Usage:
 *   anvilc [options] <input.anvil>
 *     -o <file>      write generated SystemVerilog to <file>
 *     --top <proc>   top process (default: last defined)
 *     --no-opt       skip the Fig. 8 event-graph passes
 *     --trace        print the timing-check derivation
 *     --stats        print event-graph and synthesis statistics
 *     --check-only   type check without generating code
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "anvil/compiler.h"
#include "synth/cost_model.h"

using namespace anvil;

namespace {

void
usage()
{
    fprintf(stderr,
            "usage: anvilc [options] <input.anvil>\n"
            "  -o <file>      write SystemVerilog to <file>\n"
            "  --top <proc>   top process (default: last defined)\n"
            "  --no-opt       skip event-graph optimizations\n"
            "  --trace        print the timing-check derivation\n"
            "  --stats        print event-graph/synthesis stats\n"
            "  --check-only   type check only\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, output, top;
    bool optimize = true, trace = false, stats = false;
    bool check_only = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--top" && i + 1 < argc) {
            top = argv[++i];
        } else if (arg == "--no-opt") {
            optimize = false;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--check-only") {
            check_only = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "anvilc: unknown option '%s'\n",
                    arg.c_str());
            usage();
            return 2;
        } else if (input.empty()) {
            input = arg;
        } else {
            fprintf(stderr, "anvilc: multiple inputs\n");
            return 2;
        }
    }
    if (input.empty()) {
        usage();
        return 2;
    }

    std::ifstream in(input);
    if (!in) {
        fprintf(stderr, "anvilc: cannot open '%s'\n", input.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    CompileOptions opts;
    opts.top = top;
    opts.optimize = optimize;
    opts.codegen = !check_only;
    CompileOutput out = compileAnvil(buf.str(), opts);

    // Diagnostics (warnings and notes included).
    fputs(out.diags.render().c_str(), stderr);

    if (trace) {
        for (const auto &[name, check] : out.checks) {
            printf("=== %s ===\n%s\n", name.c_str(),
                   check.traceStr().c_str());
        }
    }
    if (stats) {
        for (const auto &[name, s] : out.opt_stats) {
            printf("%-20s events %4d -> %4d", name.c_str(), s.before,
                   s.after);
            auto mod = out.module(name);
            if (mod) {
                auto r = synth::synthesize(*mod);
                printf("   %s", r.str().c_str());
            }
            printf("\n");
        }
    }

    if (!out.ok) {
        fprintf(stderr, "anvilc: %d error(s)\n",
                out.diags.errorCount());
        return 1;
    }

    if (!check_only) {
        if (output.empty()) {
            fputs(out.systemverilog.c_str(), stdout);
        } else {
            std::ofstream os(output);
            if (!os) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        output.c_str());
                return 2;
            }
            os << out.systemverilog;
            fprintf(stderr, "anvilc: wrote %s\n", output.c_str());
        }
    }
    return 0;
}
