/**
 * @file
 * anvilc — the Anvil compiler command-line driver.
 *
 * Usage:
 *   anvilc [options] <input.anvil>
 *     -o <file>      write generated SystemVerilog to <file>
 *     --top <proc>   top process (default: last defined)
 *     --no-opt       skip the Fig. 8 event-graph passes
 *     --trace        print the timing-check derivation
 *     --stats        print event-graph, synthesis, and (with --sim)
 *                    simulation/coverage statistics
 *     --check-only   type check without generating code
 *     --sim <N>      simulate N cycles under a seeded random
 *                    testbench after compiling
 *     --seed <S>     testbench seed (default 1)
 *     --farm <N>     run N parallel workers over one shared
 *                    immutable netlist (seeds seed-base .. +N-1),
 *                    stream per-worker telemetry events, and print
 *                    the merged closure report (byte-compatible
 *                    with single-run --cov/--metrics/--stats-json)
 *     --seed-base <S> first farm worker seed (default: --seed)
 *     --events <f>   write the run's live telemetry event stream
 *                    ("anvil-events-v1" JSONL); with --farm, one
 *                    stream per worker at <f>.<worker>
 *     --sweep <m>    sweep mode: full, dirty (default), or
 *                    threaded[:N] with N worker threads
 *     --emit-cpp     dump the design's compiled-sim C++ kernel
 *                    (kernel_abi.h translation unit) to stdout, or
 *                    to -o <file> if given
 *     --backend <b>  simulation backend for --sim/--replay: interp
 *                    (default) or compiled — emit the kernel, build
 *                    it with the system C++ compiler, dlopen it;
 *                    falls back to the interpreter (with a note)
 *                    when no compiler is available
 *     --vcd <file>   write a VCD waveform of the simulation
 *     --cov          print the coverage report after simulation
 *     --replay <f>   re-execute a recorded VCD dump as stimulus and
 *                    diff the re-simulation against the recording
 *                    (--sim N overrides the cycle count, --vcd
 *                    re-dumps the replay)
 *     --check-trace <f>  check a recorded VCD dump against the
 *                    channel timing contracts
 *     --contracts    print the contract set in use; with --sim also
 *                    monitor the contracts live during simulation
 *     --contract <s> explicit contract spec (repeatable), e.g.
 *                    "io_pong: ack within 4, stable, hold";
 *                    replaces the inferred set
 *     --infer-contracts  print the contract set inferred from the
 *                    Anvil types (design obligations, environment
 *                    assumptions, lifetime provenance) and exit
 *                    unless another action is requested
 *     --prove [k]    compile the design-obligation contracts into
 *                    safety automata and prove them by k-induction
 *                    (max depth k, default 6); with --vcd, a
 *                    violated obligation's counterexample is dumped
 *                    as VCD (feed it to --replay / --check-trace)
 *     --prove-report detailed per-obligation report (cone sizes,
 *                    state counts, timings); implies --prove
 *     --diff-trace <A> <B>  diff two VCD dumps: report the first
 *                    divergent cycle and signal (no design needed)
 *     --flight <K>   attach the flight recorder: a ring of the last
 *                    K cycles of changed-net deltas; on a trigger
 *                    the [trigger-K, trigger+post] window is dumped
 *                    as VCD (byte-compatible with --vcd, so
 *                    --replay / --check-trace consume it directly)
 *     --flight-pre <P>  override the pre-trigger context (default:
 *                    the --flight argument)
 *     --flight-post <Q> cycles captured after a trigger before the
 *                    dump flushes (default 8)
 *     --dump-on <t>  flight trigger (repeatable): VIOLATION (any
 *                    testbench/contract failure; the default) or
 *                    cover:NAME (a named cover point's hit count)
 *     --flight-out <p>  window dump path prefix (default "flight");
 *                    dumps land at <p>-<n>.vcd (farm workers:
 *                    <p>.w<worker>-<n>.vcd)
 *     --profile-hot <f> count every node evaluation during the run
 *                    and write the hot-spot attribution report
 *                    ("anvil-hot-v1": per-level totals, ranked hot
 *                    nets, ranked register cones) to <f>; the ranked
 *                    tables also print to stdout
 *     --metrics <f>  write run metrics (counters/gauges/histograms/
 *                    timers) as JSON ("anvil-metrics-v1"); with
 *                    --prove, prover telemetry (prove.* counters,
 *                    states/sec gauge)
 *     --profile <f>  write a Chrome-trace / Perfetto profile of the
 *                    run ("anvil-profile-v1"): one track per sim
 *                    phase (sweep, kernel, commit) and per observer;
 *                    with --prove, one track per obligation (base
 *                    and per-k induction windows)
 *     --stats-json   print a one-line machine-readable run summary
 *                    ("anvil-stats-v1") on stdout
 *     --slice <ch>   with --vcd: dump only channel <ch>'s signals
 *                    (a standalone sliced VCD window)
 *
 * Contract resolution order: explicit --contract specs; otherwise
 * the typed inference from the compiled program (formal::
 * inferContracts — design obligations only); otherwise the netlist
 * name-pair guess.
 *
 * Exit codes: 0 success; 1 check failure (type/compile errors,
 * testbench or contract violations, replay or trace divergence,
 * disproved obligations); 2 usage error; 3 I/O error; 4 proof
 * inconclusive (bound or budget reached).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "anvil/sim_runner.h"
#include "codegen/cpp_emitter.h"
#include "codegen/jit.h"
#include "obs/activity.h"
#include "obs/flight.h"
#include "obs/hot.h"
#include "obs/merge.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slice.h"
#include "obs/stream.h"
#include "obs/triage.h"
#include "formal/contracts.h"
#include "formal/kinduction.h"
#include "formal/property.h"
#include "synth/cost_model.h"
#include "tb/testbench.h"
#include "trace/contracts.h"
#include "trace/diff.h"
#include "trace/replay.h"
#include "trace/vcd_reader.h"

using namespace anvil;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitCheckFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitInconclusive = 4;

void
usage()
{
    fprintf(stderr,
            "usage: anvilc [options] <input.anvil>\n"
            "  -o <file>      write SystemVerilog to <file>\n"
            "  --top <proc>   top process (default: last defined)\n"
            "  --no-opt       skip event-graph optimizations\n"
            "  --trace        print the timing-check derivation\n"
            "  --stats        print event-graph/synthesis stats (and\n"
            "                 sim/coverage summaries with --sim)\n"
            "  --check-only   type check only\n"
            "  --sim <N>      simulate N cycles under a random\n"
            "                 testbench\n"
            "  --seed <S>     testbench seed (default 1)\n"
            "  --farm <N>     N parallel workers over one shared\n"
            "                 netlist; merged closure report\n"
            "  --seed-base <S> first farm worker seed\n"
            "  --events <f>   write the live telemetry event stream\n"
            "                 (JSONL; --farm: <f>.<worker>)\n"
            "  --sweep <m>    sweep mode: full, dirty (default),\n"
            "                 or threaded[:N]\n"
            "  --emit-cpp     dump the compiled-sim C++ kernel\n"
            "  --backend <b>  sim backend: interp (default) or\n"
            "                 compiled (JIT via the system compiler;\n"
            "                 interpreter fallback if none)\n"
            "  --vcd <file>   write a VCD waveform of the simulation\n"
            "  --cov          print the coverage report\n"
            "  --replay <f>   replay a recorded VCD dump as stimulus\n"
            "                 and diff against the recording\n"
            "  --check-trace <f>  check a recorded VCD dump against\n"
            "                 the channel timing contracts\n"
            "  --contracts    print the contract set in use (with\n"
            "                 --sim: monitor live)\n"
            "  --contract <s> explicit contract spec (repeatable)\n"
            "  --infer-contracts  print the typed contract set\n"
            "  --prove [k]    prove the contracts by k-induction\n"
            "                 (--vcd dumps a counterexample)\n"
            "  --prove-report detailed prover report\n"
            "  --diff-trace <A> <B>  first divergence of two dumps\n"
            "  --flight <K>   flight recorder: keep the last K\n"
            "                 cycles; dump a VCD window on trigger\n"
            "  --flight-pre <P>  pre-trigger context override\n"
            "  --flight-post <Q> post-trigger capture (default 8)\n"
            "  --dump-on <t>  flight trigger: VIOLATION (default)\n"
            "                 or cover:NAME (repeatable)\n"
            "  --flight-out <p>  dump prefix (default \"flight\")\n"
            "  --profile-hot <f> write the hot-spot attribution\n"
            "                 report (levels, nets, cones) to <f>\n"
            "  --metrics <f>  write run metrics JSON\n"
            "  --profile <f>  write a Chrome-trace profile of the "
            "run\n"
            "  --stats-json   one-line machine-readable run summary\n"
            "  --slice <ch>   with --vcd: dump only channel <ch>\n"
            "exit codes: 0 ok, 1 check failure, 2 usage, 3 I/O "
            "error,\n            4 proof inconclusive\n");
}

/**
 * Resolve the contract set: explicit --contract specs if given,
 * otherwise the typed inference from the compiled program, otherwise
 * the netlist name-pair guess.  Returns false on a spec syntax
 * error.
 */
bool
resolveContracts(const std::vector<std::string> &spec_texts,
                 const rtl::Netlist &nl,
                 const formal::ContractSet *typed, bool print,
                 std::vector<trace::ContractSpec> *out)
{
    if (!spec_texts.empty()) {
        for (const auto &text : spec_texts) {
            try {
                out->push_back(trace::parseContractSpec(text));
            } catch (const std::invalid_argument &e) {
                fprintf(stderr, "anvilc: %s\n", e.what());
                return false;
            }
        }
    } else if (typed && !typed->channels.empty()) {
        // The one spec every consumer shares: typed design
        // obligations plus the netlist guess for internal child
        // channels the typed set cannot see.
        *out = formal::checkableSpecs(*typed, nl);
        if (print) {
            fputs(typed->str().c_str(), stdout);
            for (size_t i = typed->obligations().size();
                 i < out->size(); i++)
                printf("contract %s\n  // internal channel "
                       "(netlist-inferred)\n",
                       (*out)[i].str().c_str());
        }
        return true;
    } else {
        *out = trace::inferContracts(nl);
    }
    if (print)
        for (const auto &s : *out)
            printf("contract %s\n", s.str().c_str());
    return true;
}

/** Parse a --sweep argument: full, dirty, or threaded[:N]. */
bool
parseSweepMode(const std::string &text, rtl::SweepMode *mode,
               int *threads)
{
    if (text == "full") {
        *mode = rtl::SweepMode::Full;
        return true;
    }
    if (text == "dirty") {
        *mode = rtl::SweepMode::Dirty;
        return true;
    }
    if (text.rfind("threaded", 0) == 0) {
        *mode = rtl::SweepMode::Threaded;
        if (text.size() == 8)
            return true;   // default worker count
        if (text[8] == ':') {
            int n = atoi(text.c_str() + 9);
            if (n >= 1) {
                *threads = n;
                return true;
            }
        }
    }
    return false;
}

/** Observability options threaded through --sim / --replay runs. */
struct ObsOptions
{
    std::string metrics_path;    // --metrics
    std::string profile_path;    // --profile
    std::string slice_channel;   // --slice
    std::string events_path;     // --events
    bool stats_json = false;     // --stats-json

    uint64_t flight = 0;         // --flight K (0: recorder off)
    uint64_t flight_pre = 0;     // --flight-pre (0: use flight)
    uint64_t flight_post = 8;    // --flight-post
    std::vector<std::string> dump_on;   // --dump-on triggers
    std::string flight_out = "flight";  // --flight-out prefix
    std::string hot_path;        // --profile-hot

    /** True when any telemetry sink is requested. */
    bool telemetry() const
    {
        return !metrics_path.empty() || !profile_path.empty() ||
               stats_json || !events_path.empty();
    }

    /** Pre-trigger window actually used by the recorder. */
    uint64_t flightPre() const
    {
        return flight_pre ? flight_pre : flight;
    }

    /** True when any --dump-on trigger names a cover point. */
    bool coverTriggered() const
    {
        for (const std::string &t : dump_on)
            if (t.rfind("cover:", 0) == 0)
                return true;
        return false;
    }
};

/**
 * Live event-stream tap for a single run (--events): the sink plus
 * the two stream-side observer plugins, so finishRun can emit the
 * end-of-run tail and export their metrics.
 */
struct EventTap
{
    obs::EventSink *sink = nullptr;
    std::ofstream *os = nullptr;
    std::string path;
    obs::RollingActivity *activity = nullptr;
    obs::AssertionTriage *triage = nullptr;
};

/**
 * --backend compiled: JIT the netlist and attach the kernel to the
 * bench's simulator.  Failures (no compiler, compile error, hash
 * mismatch) degrade to the interpreter with a note on stderr; the
 * run's results and exit code are identical either way.
 */
codegen::JitResult
attachCompiledBackend(tb::Testbench &bench)
{
    codegen::JitResult jr =
        codegen::jitCompileKernel(bench.sim().netlist());
    if (jr.kernel &&
        bench.sim().attachKernel(codegen::kernelRef(jr.kernel)))
        return jr;
    fprintf(stderr,
            "anvilc: note: compiled backend unavailable (%s); "
            "using the interpreter\n",
            jr.error.empty() ? "kernel attach failed"
                             : jr.error.c_str());
    return jr;
}

/**
 * Hook the telemetry spine up before a run: one TraceProfiler feeds
 * both the simulator's phase timing (Sim::setTelemetry) and the
 * change feed's per-observer tracks.  Event buffering is only paid
 * for when --profile will write them out.
 */
std::unique_ptr<obs::TraceProfiler>
attachTelemetry(tb::Testbench &bench, const ObsOptions &oo)
{
    if (!oo.telemetry())
        return nullptr;
    auto profiler = std::make_unique<obs::TraceProfiler>(
        !oo.profile_path.empty());
    bench.sim().setTelemetry(profiler.get());
    bench.feed().setProfiler(profiler.get());
    return profiler;
}

/** Attach the --slice / --vcd observer to the bench. */
int
attachWaves(tb::Testbench &bench, std::ofstream &vcd_os,
            const ObsOptions &oo)
{
    if (oo.slice_channel.empty()) {
        bench.attachVcd(vcd_os);
        return kExitOk;
    }
    try {
        bench.attachObserver(std::make_unique<obs::ChannelSlicer>(
            bench.sim(), vcd_os, oo.slice_channel));
    } catch (const std::invalid_argument &e) {
        fprintf(stderr, "anvilc: %s\n", e.what());
        return kExitUsage;
    }
    return kExitOk;
}

/** Shared tail of --sim and --replay runs: run, report, exit code. */
int
finishRun(tb::Testbench &bench, uint64_t cycles,
          tb::Coverage *coverage, std::ofstream *vcd_os,
          const std::string &vcd_path, bool cov, bool stats,
          const ObsOptions &oo, obs::TraceProfiler *profiler,
          const codegen::JitResult *jit,
          const EventTap *tap = nullptr,
          const obs::FlightRecorder *flight = nullptr)
{
    uint64_t wall0 = rtl::monotonicNanos();
    tb::TbResult result = bench.run(cycles);
    uint64_t wall_ns = rtl::monotonicNanos() - wall0;
    bench.feed().finish();

    printf("sim: %llu cycles, %llu toggles, %zu dprint line(s)\n",
           (unsigned long long)result.cycles,
           (unsigned long long)bench.sim().totalToggles(),
           bench.sim().log().size());
    if (stats) {
        // The activity factor is what the event-driven sweep
        // exploits: nodes actually evaluated vs. the whole strict
        // table, per cycle.
        const rtl::SweepStats &ss = bench.sim().sweepStats();
        double act = ss.strict_nodes
            ? 100.0 * ss.avgNodes() /
                static_cast<double>(ss.strict_nodes)
            : 0.0;
        // Always name the backend actually used: a silent JIT
        // fallback must be visible here, not just in stats-json.
        printf("sweep: mode=%s backend=%s threads=%d strict-nodes=%zu "
               "evaluated/cycle avg=%.1f peak=%llu "
               "changed-nets/cycle avg=%.1f peak=%llu "
               "activity=%.1f%%\n",
               rtl::sweepModeName(ss.mode),
               bench.sim().kernelAttached() ? "compiled" : "interp",
               ss.threads,
               ss.strict_nodes, ss.avgNodes(),
               (unsigned long long)ss.peak_nodes, ss.avgChanged(),
               (unsigned long long)ss.peak_changed, act);
        if (bench.sim().kernelAttached())
            printf("sweep-kernel: frames=%llu dense-frames=%llu "
                   "fallback-switches=%llu\n",
                   (unsigned long long)ss.kernel_frames,
                   (unsigned long long)ss.kernel_dense_frames,
                   (unsigned long long)ss.kernel_fallback_switches);
    }
    if (coverage && (stats || cov))
        printf("sim-summary %s\n", coverage->summaryJson().c_str());
    if (cov && coverage)
        fputs(coverage->report().c_str(), stdout);
    if (vcd_os) {
        vcd_os->flush();
        if (!vcd_os->good()) {
            fprintf(stderr, "anvilc: error writing '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        fprintf(stderr, "anvilc: wrote %s\n", vcd_path.c_str());
    }
    if (flight)
        for (const obs::FlightRecorder::DumpInfo &d :
             flight->dumps())
            printf("flight: dump %d: %s @%llu window "
                   "[%llu..%llu]%s%s\n",
                   d.index, d.trigger.c_str(),
                   (unsigned long long)d.trigger_cycle,
                   (unsigned long long)d.from,
                   (unsigned long long)d.to,
                   d.path.empty() ? "" : " -> ",
                   d.path.c_str());

    // Hot-spot attribution (--profile-hot): ranked tables on stdout,
    // the anvil-hot-v1 JSON report to the requested file.
    std::unique_ptr<obs::HotReport> hot;
    if (!oo.hot_path.empty()) {
        hot = std::make_unique<obs::HotReport>(
            obs::buildHotReport(bench.sim()));
        fputs(hot->table().c_str(), stdout);
        std::ofstream os(oo.hot_path);
        os << hot->json() << "\n";
        os.flush();
        if (!os.good()) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    oo.hot_path.c_str());
            return kExitIo;
        }
        fprintf(stderr, "anvilc: wrote %s\n", oo.hot_path.c_str());
    }

    if (oo.telemetry()) {
        obs::MetricsRegistry reg;
        run::collectRunMetrics(reg, bench, result, coverage,
                               profiler, jit, wall_ns,
                               tap ? tap->activity : nullptr,
                               tap ? tap->triage : nullptr);
        if (flight)
            flight->exportMetrics(reg);
        if (hot)
            hot->exportMetrics(reg);
        if (tap && tap->sink) {
            run::emitRunTail(*tap->sink, bench, result, coverage,
                             reg, wall_ns);
            tap->os->flush();
            if (!tap->os->good()) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        tap->path.c_str());
                return kExitIo;
            }
            fprintf(stderr, "anvilc: wrote %s\n", tap->path.c_str());
        }
        if (!oo.metrics_path.empty()) {
            std::ofstream os(oo.metrics_path);
            os << reg.json() << "\n";
            os.flush();
            if (!os.good()) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        oo.metrics_path.c_str());
                return kExitIo;
            }
            fprintf(stderr, "anvilc: wrote %s\n",
                    oo.metrics_path.c_str());
        }
        if (!oo.profile_path.empty() && profiler) {
            profiler->setLevelActivity(bench.feed().levelActivity());
            std::ofstream os(oo.profile_path);
            profiler->writeJson(os);
            os.flush();
            if (!os.good()) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        oo.profile_path.c_str());
                return kExitIo;
            }
            fprintf(stderr, "anvilc: wrote %s\n",
                    oo.profile_path.c_str());
        }
        if (oo.stats_json) {
            const rtl::SweepStats &ss = bench.sim().sweepStats();
            double act = ss.strict_nodes
                ? 100.0 * ss.avgNodes() /
                    static_cast<double>(ss.strict_nodes)
                : 0.0;
            double cps = wall_ns
                ? static_cast<double>(result.cycles) * 1e9 /
                    static_cast<double>(wall_ns)
                : 0.0;
            printf("stats-json {\"schema\":\"anvil-stats-v1\","
                   "\"design\":\"%s\",\"cycles\":%llu,"
                   "\"backend\":\"%s\",\"sweep\":\"%s\","
                   "\"threads\":%d,\"activity_pct\":%.2f,"
                   "\"toggles\":%llu,\"failures\":%zu,"
                   "\"wall_ns\":%llu,\"cycles_per_sec\":%.0f,"
                   "\"coverage\":%s}\n",
                   bench.sim().topName().c_str(),
                   (unsigned long long)result.cycles,
                   bench.sim().kernelAttached() ? "compiled"
                                                : "interp",
                   rtl::sweepModeName(ss.mode), ss.threads, act,
                   (unsigned long long)bench.sim().totalToggles(),
                   result.failures.size(),
                   (unsigned long long)wall_ns, cps,
                   coverage ? coverage->summaryJson().c_str()
                            : "null");
        }
    }

    if (!result.ok()) {
        fprintf(stderr, "anvilc: %s\n", result.summary().c_str());
        return kExitCheckFailure;
    }
    return kExitOk;
}

/** Random-testbench run over the compiled top module. */
int
simulate(const rtl::ModulePtr &mod, long cycles, uint64_t seed,
         const std::string &vcd_path, bool cov, bool stats,
         bool contracts,
         const std::vector<std::string> &contract_specs,
         const formal::ContractSet *typed,
         rtl::SweepMode sweep_mode, int sweep_threads,
         bool compiled_backend, const ObsOptions &oo)
{
    tb::Testbench bench(mod, seed);
    bench.sim().setSweepMode(sweep_mode, sweep_threads);
    if (!oo.hot_path.empty())
        bench.sim().setEvalCounting(true);
    codegen::JitResult jit;
    if (compiled_backend)
        jit = attachCompiledBackend(bench);
    std::unique_ptr<obs::TraceProfiler> profiler =
        attachTelemetry(bench, oo);
    for (const auto &in : bench.sim().inputNames())
        bench.driveRandom(in);

    std::ofstream events_os;
    std::unique_ptr<obs::EventSink> sink;
    EventTap tap;
    if (!oo.events_path.empty()) {
        events_os.open(oo.events_path);
        if (!events_os) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    oo.events_path.c_str());
            return kExitIo;
        }
        sink = std::make_unique<obs::EventSink>(events_os);
        tap.sink = sink.get();
        tap.os = &events_os;
        tap.path = oo.events_path;
    }

    trace::ContractMonitor *monitor = nullptr;
    if (contracts || !contract_specs.empty()) {
        std::vector<trace::ContractSpec> specs;
        if (!resolveContracts(contract_specs,
                              bench.sim().netlist(), typed,
                              contracts, &specs))
            return kExitUsage;
        try {
            monitor = static_cast<trace::ContractMonitor *>(
                &bench.addMonitor(
                    std::make_unique<trace::ContractMonitor>(
                        std::move(specs), bench.sim())));
        } catch (const std::invalid_argument &e) {
            fprintf(stderr, "anvilc: %s\n", e.what());
            return kExitUsage;
        }
    }

    tb::Coverage *coverage = nullptr;
    if (cov || stats || (oo.flight && oo.coverTriggered()))
        coverage = &bench.coverage();

    // The stream-side plugins ride along whenever the run streams
    // events — the same stack a farm worker runs, so a single-run
    // stream merges (and compares) cleanly against farm output.
    if (sink) {
        if (monitor)
            tap.triage = static_cast<obs::AssertionTriage *>(
                &bench.attachObserver(
                    std::make_unique<obs::AssertionTriage>(
                        *monitor, sink.get())));
        tap.activity = static_cast<obs::RollingActivity *>(
            &bench.attachObserver(
                std::make_unique<obs::RollingActivity>(
                    /*window=*/64, sink.get())));
        sink->runBegin(bench.sim().topName(), /*worker=*/0, seed,
                       static_cast<uint64_t>(cycles),
                       bench.sim().sweepMode(),
                       bench.sim().sweepStats().threads);
    }

    // Flight recorder last: its trigger poll must see the cycle's
    // monitor and coverage updates, and its window_dump events land
    // in the stream the sink plugins already opened.
    obs::FlightRecorder *flight = nullptr;
    if (oo.flight) {
        obs::FlightRecorder::Options fo;
        fo.pre = oo.flightPre();
        fo.post = oo.flight_post;
        auto rec = std::make_unique<obs::FlightRecorder>(bench.sim(),
                                                         fo);
        std::string err;
        if (!run::attachFlightTriggers(*rec, bench, coverage,
                                       oo.dump_on, &err)) {
            fprintf(stderr, "anvilc: %s\n", err.c_str());
            return kExitUsage;
        }
        std::string prefix = oo.flight_out;
        obs::EventSink *esink = sink.get();
        rec->setDumpSink(
            [prefix, esink](const obs::FlightRecorder::DumpInfo &d,
                            const std::string &vcd) {
                std::string path =
                    prefix + "-" + std::to_string(d.index) + ".vcd";
                std::ofstream os(path);
                os << vcd;
                os.flush();
                if (!os.good()) {
                    fprintf(stderr, "anvilc: cannot write '%s'\n",
                            path.c_str());
                    path.clear();
                } else {
                    fprintf(stderr, "anvilc: wrote %s\n",
                            path.c_str());
                }
                if (esink)
                    esink->windowDump(d.trigger_cycle, d.trigger,
                                      path, d.from, d.to);
                return path;
            });
        flight = static_cast<obs::FlightRecorder *>(
            &bench.attachObserver(std::move(rec)));
    }

    std::ofstream vcd_os;
    if (!vcd_path.empty()) {
        vcd_os.open(vcd_path);
        if (!vcd_os) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        if (int rc = attachWaves(bench, vcd_os, oo))
            return rc;
    }

    return finishRun(bench, static_cast<uint64_t>(cycles), coverage,
                     vcd_path.empty() ? nullptr : &vcd_os, vcd_path,
                     cov, stats, oo, profiler.get(),
                     compiled_backend ? &jit : nullptr,
                     sink ? &tap : nullptr, flight);
}

/**
 * In-process farm fan-out (--farm N): N workers over one shared
 * immutable netlist (and one JIT kernel), each running the standard
 * random testbench at seed_base + worker, streaming telemetry
 * events into an in-memory obs::Merger.  The merged report is
 * byte-compatible with single-run output.
 */
int
farm(const rtl::ModulePtr &mod, long cycles, int workers,
     uint64_t seed_base, bool cov, bool stats, bool contracts,
     const std::vector<std::string> &contract_specs,
     const formal::ContractSet *typed, rtl::SweepMode sweep_mode,
     int sweep_threads, bool compiled_backend, const ObsOptions &oo)
{
    run::FarmConfig fc;
    fc.top = mod;
    fc.netlist = std::make_shared<const rtl::Netlist>(*mod);
    fc.workers = workers;
    fc.seed_base = seed_base;
    fc.cycles = static_cast<uint64_t>(cycles);
    fc.sweep_mode = sweep_mode;
    fc.sweep_threads = sweep_threads;
    fc.compiled_backend = compiled_backend;
    fc.coverage = cov || stats ||
                  (oo.flight && oo.coverTriggered());
    fc.flight_pre = oo.flight ? oo.flightPre() : 0;
    fc.flight_post = oo.flight_post;
    fc.flight_triggers = oo.dump_on;
    fc.flight_out = oo.flight ? oo.flight_out : "";

    bool monitored = contracts || !contract_specs.empty();
    if (monitored &&
        !resolveContracts(contract_specs, *fc.netlist, typed,
                          contracts, &fc.contracts))
        return kExitUsage;

    obs::Merger merger;
    run::FarmResult fr;
    try {
        fr = run::runFarm(fc, merger);
    } catch (const std::exception &e) {
        fprintf(stderr, "anvilc: farm: %s\n", e.what());
        return kExitCheckFailure;
    }
    if (!fr.jit_note.empty())
        fprintf(stderr,
                "anvilc: note: compiled backend unavailable (%s); "
                "using the interpreter\n", fr.jit_note.c_str());

    printf("farm: %d worker(s), %llu cycle(s) each, "
           "seeds %llu..%llu\n",
           workers, (unsigned long long)cycles,
           (unsigned long long)seed_base,
           (unsigned long long)(seed_base +
                                static_cast<uint64_t>(workers) - 1));
    for (const run::JobResult &j : fr.jobs)
        printf("worker %d: seed %llu: %s\n", j.worker,
               (unsigned long long)j.seed, j.summary.c_str());

    obs::Merger::Totals t = merger.totals();
    printf("sim: %llu cycles, %llu toggles across %zu worker(s)\n",
           (unsigned long long)t.cycles,
           (unsigned long long)t.toggles, t.workers);
    if (merger.hasCoverage() && (stats || cov))
        printf("sim-summary %s\n",
               merger.coverage().summaryJson().c_str());
    if (cov && merger.hasCoverage())
        fputs(merger.coverage().report().c_str(), stdout);
    if (monitored)
        fputs(merger.triageReport().c_str(), stdout);
    for (const obs::Merger::WindowDump &wd : merger.windowDumps())
        printf("flight: worker %d: %s @%llu window [%llu..%llu]%s%s\n",
               wd.worker, wd.trigger.c_str(),
               (unsigned long long)wd.trigger_cycle,
               (unsigned long long)wd.from,
               (unsigned long long)wd.to,
               wd.path.empty() ? "" : " -> ", wd.path.c_str());

    if (!oo.events_path.empty()) {
        // One on-disk stream per worker: <path>.<worker> — the same
        // files tools/anvil_merge consumes.
        for (const run::JobResult &j : fr.jobs) {
            std::string path =
                oo.events_path + "." + std::to_string(j.worker);
            std::ofstream os(path);
            if (os)
                os << j.events;
            os.flush();
            if (!os.good()) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        path.c_str());
                return kExitIo;
            }
            fprintf(stderr, "anvilc: wrote %s\n", path.c_str());
        }
    }
    if (!oo.metrics_path.empty()) {
        std::ofstream os(oo.metrics_path);
        if (os)
            os << merger.metricsJson() << "\n";
        os.flush();
        if (!os.good()) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    oo.metrics_path.c_str());
            return kExitIo;
        }
        fprintf(stderr, "anvilc: wrote %s\n",
                oo.metrics_path.c_str());
    }
    if (oo.stats_json)
        printf("stats-json %s\n",
               merger.statsJson(fr.wall_ns).c_str());

    if (fr.anyFailed()) {
        for (const run::JobResult &j : fr.jobs)
            if (!j.ok)
                fprintf(stderr,
                        "anvilc: worker %d (seed %llu): %s\n",
                        j.worker, (unsigned long long)j.seed,
                        j.summary.c_str());
        return kExitCheckFailure;
    }
    return kExitOk;
}

/** Replay a recorded dump as stimulus and diff the re-simulation. */
int
replay(const rtl::ModulePtr &mod, const std::string &dump_path,
       long cycles_override, const std::string &vcd_path, bool cov,
       bool stats, bool contracts,
       const std::vector<std::string> &contract_specs,
       const formal::ContractSet *typed,
       rtl::SweepMode sweep_mode, int sweep_threads,
       bool compiled_backend, const ObsOptions &oo)
{
    trace::Trace t;
    try {
        t = trace::VcdReader::readFile(dump_path);
    } catch (const std::runtime_error &e) {
        fprintf(stderr, "anvilc: %s: %s\n", dump_path.c_str(),
                e.what());
        return kExitIo;
    }

    tb::Testbench bench(mod);
    bench.sim().setSweepMode(sweep_mode, sweep_threads);
    if (!oo.hot_path.empty())
        bench.sim().setEvalCounting(true);
    codegen::JitResult jit;
    if (compiled_backend)
        jit = attachCompiledBackend(bench);
    std::unique_ptr<obs::TraceProfiler> profiler =
        attachTelemetry(bench, oo);
    auto driver =
        std::make_unique<trace::ReplayDriver>(t, bench.sim());
    uint64_t cycles = driver->cyclesAvailable();
    // Inputs the dump never recorded stay at zero; say so rather
    // than let the diff below blame the design.
    for (const auto &in : driver->missingInputs())
        fprintf(stderr,
                "anvilc: note: input '%s' not recorded in %s; "
                "replaying it as zero\n",
                in.c_str(), dump_path.c_str());
    bench.addDriver(std::move(driver));
    bench.addMonitor(
        std::make_unique<trace::ReplayMonitor>(t, bench.sim()));

    // Contract monitoring applies to replayed runs too.
    if (contracts || !contract_specs.empty()) {
        std::vector<trace::ContractSpec> specs;
        if (!resolveContracts(contract_specs,
                              bench.sim().netlist(), typed,
                              contracts, &specs))
            return kExitUsage;
        try {
            bench.addMonitor(
                std::make_unique<trace::ContractMonitor>(
                    std::move(specs), bench.sim()));
        } catch (const std::invalid_argument &e) {
            fprintf(stderr, "anvilc: %s\n", e.what());
            return kExitUsage;
        }
    }

    if (cycles_override > 0)
        cycles = static_cast<uint64_t>(cycles_override);
    printf("replay: %s: %zu signals, %llu change(s), %llu cycle(s)\n",
           dump_path.c_str(), t.signals().size(),
           (unsigned long long)t.changeCount(),
           (unsigned long long)cycles);

    tb::Coverage *coverage = nullptr;
    if (cov || stats)
        coverage = &bench.coverage();

    std::ofstream vcd_os;
    if (!vcd_path.empty()) {
        vcd_os.open(vcd_path);
        if (!vcd_os) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        if (int rc = attachWaves(bench, vcd_os, oo))
            return rc;
    }

    return finishRun(bench, cycles, coverage,
                     vcd_path.empty() ? nullptr : &vcd_os, vcd_path,
                     cov, stats, oo, profiler.get(),
                     compiled_backend ? &jit : nullptr);
}

/** Offline contract check (and coverage grading) of a recorded dump. */
int
checkTraceFile(const rtl::ModulePtr &mod,
               const std::string &dump_path, bool print_contracts,
               const std::vector<std::string> &contract_specs,
               const formal::ContractSet *typed, bool cov)
{
    trace::Trace t;
    try {
        t = trace::VcdReader::readFile(dump_path);
    } catch (const std::runtime_error &e) {
        fprintf(stderr, "anvilc: %s: %s\n", dump_path.c_str(),
                e.what());
        return kExitIo;
    }

    rtl::Sim sim(mod);
    std::vector<trace::ContractSpec> specs;
    if (!resolveContracts(contract_specs, sim.netlist(), typed,
                          print_contracts, &specs))
        return kExitUsage;

    if (cov) {
        // Offline coverage replay: grade the recording against the
        // design's coverage model without re-simulating.
        tb::Coverage coverage;
        uint64_t frames =
            trace::gradeCoverage(sim.netlist(), t, coverage);
        printf("coverage-replay: %s: %llu frame(s)\n",
               dump_path.c_str(), (unsigned long long)frames);
        printf("sim-summary %s\n", coverage.summaryJson().c_str());
        fputs(coverage.report().c_str(), stdout);
    }

    std::vector<std::string> skipped;
    auto violations = trace::checkTrace(specs, t, &skipped);
    for (const auto &ch : skipped)
        fprintf(stderr,
                "anvilc: note: channel '%s' not recorded in %s\n",
                ch.c_str(), dump_path.c_str());
    printf("check-trace: %s: %zu contract(s), %llu cycle(s), "
           "%zu violation(s)\n",
           dump_path.c_str(), specs.size() - skipped.size(),
           (unsigned long long)t.cycles(), violations.size());
    if (!violations.empty()) {
        fputs(trace::violationReport(violations).c_str(), stdout);
        return kExitCheckFailure;
    }
    return kExitOk;
}

/** Diff two recorded dumps; no design needed. */
int
diffTraceFiles(const std::string &path_a, const std::string &path_b)
{
    trace::Trace a, b;
    try {
        a = trace::VcdReader::readFile(path_a);
        b = trace::VcdReader::readFile(path_b);
    } catch (const std::runtime_error &e) {
        fprintf(stderr, "anvilc: %s\n", e.what());
        return kExitIo;
    }
    trace::TraceDiff d = trace::diffTraces(a, b);
    printf("diff-trace: %s (%zu signal(s)) vs %s (%zu signal(s))\n",
           path_a.c_str(), a.signals().size(), path_b.c_str(),
           b.signals().size());
    fputs(d.str().c_str(), stdout);
    return d.identical ? kExitOk : kExitCheckFailure;
}

/** Prove the contract obligations by k-induction. */
int
proveDesign(const rtl::ModulePtr &mod,
            const std::vector<std::string> &contract_specs,
            const formal::ContractSet *typed, bool print_contracts,
            int prove_k, bool detailed, const std::string &vcd_path,
            rtl::SweepMode sweep_mode, int sweep_threads,
            const ObsOptions &oo)
{
    rtl::Sim sim(mod);
    std::vector<trace::ContractSpec> specs;
    if (!resolveContracts(contract_specs, sim.netlist(), typed,
                          print_contracts, &specs))
        return kExitUsage;

    formal::InstrumentedDesign inst =
        formal::compileProperties(*mod, specs);
    if (inst.props.empty()) {
        printf("prove: no checkable obligations\n");
        return kExitOk;
    }

    formal::ProveOptions opts;
    if (prove_k > 0)
        opts.k_max = prove_k;
    opts.sweep_mode = sweep_mode;
    opts.sweep_threads = sweep_threads;
    // The prover reports into the same telemetry spine as a
    // simulation run: per-obligation phase windows onto the profiler,
    // prove.* counters and the states/sec gauge into the registry.
    obs::TraceProfiler profiler(/*record_events=*/true);
    obs::MetricsRegistry reg;
    if (!oo.profile_path.empty())
        opts.profiler = &profiler;
    if (!oo.metrics_path.empty())
        opts.metrics = &reg;
    formal::ProveResult res = formal::prove(inst, opts);
    fputs(res.report(detailed).c_str(), stdout);

    if (!oo.metrics_path.empty()) {
        std::ofstream os(oo.metrics_path);
        os << reg.json() << "\n";
        os.flush();
        if (!os.good()) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    oo.metrics_path.c_str());
            return kExitIo;
        }
        fprintf(stderr, "anvilc: wrote %s\n",
                oo.metrics_path.c_str());
    }
    if (!oo.profile_path.empty()) {
        std::ofstream os(oo.profile_path);
        profiler.writeJson(os);
        os.flush();
        if (!os.good()) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    oo.profile_path.c_str());
            return kExitIo;
        }
        fprintf(stderr, "anvilc: wrote %s\n",
                oo.profile_path.c_str());
    }

    int proved = 0, violated = 0, unknown = 0, conditional = 0;
    const formal::ObligationOutcome *cex = nullptr;
    for (const auto &o : res.obligations) {
        switch (o.status) {
          case formal::ObligationOutcome::Status::Proved:
            proved++;
            break;
          case formal::ObligationOutcome::Status::Violated:
            violated++;
            if (!cex)
                cex = &o;
            break;
          case formal::ObligationOutcome::Status::Unknown:
            unknown++;
            break;
          case formal::ObligationOutcome::Status::Conditional:
            conditional++;
            break;
        }
    }
    printf("prove: %zu obligation(s), %d proved, %d conditional, "
           "%d violated, %d unknown\n",
           res.obligations.size(), proved, conditional, violated,
           unknown);

    if (cex && !vcd_path.empty()) {
        std::ofstream os(vcd_path);
        if (!os) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        formal::writeCexVcd(inst, *cex, os, sweep_mode,
                            sweep_threads);
        if (!os.good()) {
            fprintf(stderr, "anvilc: error writing '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        fprintf(stderr,
                "anvilc: wrote %s (counterexample for %s)\n",
                vcd_path.c_str(), cex->name.c_str());
    }
    if (violated)
        return kExitCheckFailure;
    if (unknown)
        return kExitInconclusive;
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, output, top, vcd_path;
    std::string replay_path, check_trace_path;
    std::string diff_a, diff_b;
    bool optimize = true, trace_flag = false, stats = false;
    bool check_only = false, cov = false, contracts = false;
    bool infer_contracts = false, prove = false;
    bool prove_report = false;
    int prove_k = 0;
    std::vector<std::string> contract_specs;
    long sim_cycles = 0;
    uint64_t seed = 1;
    int farm_workers = 0;
    uint64_t seed_base = 0;
    bool seed_base_set = false;
    rtl::SweepMode sweep_mode = rtl::SweepMode::Dirty;
    int sweep_threads = 0;
    bool sweep_set = false;
    bool emit_cpp = false;
    bool compiled_backend = false;
    bool backend_set = false;
    bool flight_aux = false;   // any --flight-* / --dump-on given
    ObsOptions oo;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--top" && i + 1 < argc) {
            top = argv[++i];
        } else if (arg == "--no-opt") {
            optimize = false;
        } else if (arg == "--trace") {
            trace_flag = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--check-only") {
            check_only = true;
        } else if (arg == "--sim" && i + 1 < argc) {
            sim_cycles = atol(argv[++i]);
            if (sim_cycles <= 0) {
                fprintf(stderr, "anvilc: bad --sim cycle count\n");
                return kExitUsage;
            }
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--farm" && i + 1 < argc) {
            farm_workers = atoi(argv[++i]);
            if (farm_workers < 1) {
                fprintf(stderr,
                        "anvilc: bad --farm worker count\n");
                return kExitUsage;
            }
        } else if (arg == "--seed-base" && i + 1 < argc) {
            seed_base = strtoull(argv[++i], nullptr, 0);
            seed_base_set = true;
        } else if (arg == "--events" && i + 1 < argc) {
            oo.events_path = argv[++i];
        } else if (arg == "--sweep" && i + 1 < argc) {
            if (!parseSweepMode(argv[++i], &sweep_mode,
                                &sweep_threads)) {
                fprintf(stderr,
                        "anvilc: bad --sweep mode '%s' (expected "
                        "full, dirty, or threaded[:N])\n", argv[i]);
                return kExitUsage;
            }
            sweep_set = true;
        } else if (arg == "--emit-cpp") {
            emit_cpp = true;
        } else if (arg == "--backend" && i + 1 < argc) {
            std::string b = argv[++i];
            if (b == "compiled") {
                compiled_backend = true;
            } else if (b != "interp") {
                fprintf(stderr,
                        "anvilc: bad --backend '%s' (expected "
                        "interp or compiled)\n", b.c_str());
                return kExitUsage;
            }
            backend_set = true;
        } else if (arg == "--vcd" && i + 1 < argc) {
            vcd_path = argv[++i];
        } else if (arg == "--cov") {
            cov = true;
        } else if (arg == "--replay" && i + 1 < argc) {
            replay_path = argv[++i];
        } else if (arg == "--check-trace" && i + 1 < argc) {
            check_trace_path = argv[++i];
        } else if (arg == "--contracts") {
            contracts = true;
        } else if (arg == "--contract" && i + 1 < argc) {
            contract_specs.push_back(argv[++i]);
        } else if (arg == "--infer-contracts") {
            infer_contracts = true;
        } else if (arg == "--prove") {
            prove = true;
            // Optional depth: `--prove 4`.
            if (i + 1 < argc && argv[i + 1][0] != '\0' &&
                strspn(argv[i + 1], "0123456789") ==
                    strlen(argv[i + 1]))
                prove_k = atoi(argv[++i]);
        } else if (arg == "--prove-report") {
            prove = true;
            prove_report = true;
        } else if (arg == "--diff-trace" && i + 2 < argc) {
            diff_a = argv[++i];
            diff_b = argv[++i];
        } else if (arg == "--flight" && i + 1 < argc) {
            long k = atol(argv[++i]);
            if (k < 1) {
                fprintf(stderr,
                        "anvilc: bad --flight window size\n");
                return kExitUsage;
            }
            oo.flight = static_cast<uint64_t>(k);
        } else if (arg == "--flight-pre" && i + 1 < argc) {
            long p = atol(argv[++i]);
            if (p < 1) {
                fprintf(stderr, "anvilc: bad --flight-pre count\n");
                return kExitUsage;
            }
            oo.flight_pre = static_cast<uint64_t>(p);
            flight_aux = true;
        } else if (arg == "--flight-post" && i + 1 < argc) {
            long q = atol(argv[++i]);
            if (q < 0) {
                fprintf(stderr, "anvilc: bad --flight-post count\n");
                return kExitUsage;
            }
            oo.flight_post = static_cast<uint64_t>(q);
            flight_aux = true;
        } else if (arg == "--dump-on" && i + 1 < argc) {
            std::string t = argv[++i];
            if (t != "VIOLATION" && t.rfind("cover:", 0) != 0) {
                fprintf(stderr,
                        "anvilc: bad --dump-on trigger '%s' "
                        "(expected VIOLATION or cover:NAME)\n",
                        t.c_str());
                return kExitUsage;
            }
            oo.dump_on.push_back(std::move(t));
            flight_aux = true;
        } else if (arg == "--flight-out" && i + 1 < argc) {
            oo.flight_out = argv[++i];
            flight_aux = true;
        } else if (arg == "--profile-hot" && i + 1 < argc) {
            oo.hot_path = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
            oo.metrics_path = argv[++i];
        } else if (arg == "--profile" && i + 1 < argc) {
            oo.profile_path = argv[++i];
        } else if (arg == "--stats-json") {
            oo.stats_json = true;
        } else if (arg == "--slice" && i + 1 < argc) {
            oo.slice_channel = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return kExitOk;
        } else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "anvilc: unknown option '%s'\n",
                    arg.c_str());
            usage();
            return kExitUsage;
        } else if (input.empty()) {
            input = arg;
        } else {
            fprintf(stderr, "anvilc: multiple inputs\n");
            return kExitUsage;
        }
    }
    // Trace diffing needs no design at all.
    if (!diff_a.empty()) {
        if (!input.empty() || sim_cycles > 0 ||
            !replay_path.empty() || !check_trace_path.empty() ||
            prove || infer_contracts || contracts || cov ||
            !output.empty()) {
            fprintf(stderr, "anvilc: --diff-trace takes no other "
                            "action\n");
            return kExitUsage;
        }
        return diffTraceFiles(diff_a, diff_b);
    }
    if (input.empty()) {
        usage();
        return kExitUsage;
    }
    if (!replay_path.empty() && !check_trace_path.empty()) {
        fprintf(stderr,
                "anvilc: --replay and --check-trace conflict\n");
        return kExitUsage;
    }
    if (prove && (sim_cycles > 0 || !replay_path.empty() ||
                  !check_trace_path.empty())) {
        fprintf(stderr, "anvilc: --prove conflicts with "
                        "--sim/--replay/--check-trace\n");
        return kExitUsage;
    }
    bool runs_sim = sim_cycles > 0 || !replay_path.empty();
    if (!runs_sim && !prove &&
        (!vcd_path.empty() || seed != 1 || sweep_set)) {
        fprintf(stderr, "anvilc: --vcd/--seed/--sweep require "
                        "--sim <N>, --replay, or --prove\n");
        return kExitUsage;
    }
    if (backend_set && !runs_sim) {
        fprintf(stderr, "anvilc: --backend requires --sim <N> or "
                        "--replay\n");
        return kExitUsage;
    }
    if (farm_workers > 0 && sim_cycles <= 0) {
        fprintf(stderr, "anvilc: --farm requires --sim <N>\n");
        return kExitUsage;
    }
    if (seed_base_set && farm_workers <= 0) {
        fprintf(stderr, "anvilc: --seed-base requires --farm <N>\n");
        return kExitUsage;
    }
    if (farm_workers > 0 &&
        (!replay_path.empty() || !vcd_path.empty() ||
         !oo.slice_channel.empty() || !oo.profile_path.empty() ||
         !oo.hot_path.empty())) {
        fprintf(stderr,
                "anvilc: --farm conflicts with --replay/--vcd/"
                "--slice/--profile/--profile-hot\n");
        return kExitUsage;
    }
    if (oo.flight && (sim_cycles <= 0 || !replay_path.empty())) {
        fprintf(stderr,
                "anvilc: --flight requires --sim <N> (not "
                "--replay)\n");
        return kExitUsage;
    }
    if (flight_aux && !oo.flight) {
        fprintf(stderr,
                "anvilc: --flight-pre/--flight-post/--dump-on/"
                "--flight-out require --flight <K>\n");
        return kExitUsage;
    }
    if (!oo.events_path.empty() &&
        (sim_cycles <= 0 || !replay_path.empty())) {
        fprintf(stderr,
                "anvilc: --events requires --sim <N> (not "
                "--replay)\n");
        return kExitUsage;
    }
    // --metrics/--profile also tap the prover's telemetry spine;
    // --stats-json/--slice/--profile-hot remain simulation-only.
    if ((!oo.metrics_path.empty() || !oo.profile_path.empty()) &&
        !runs_sim && !prove) {
        fprintf(stderr,
                "anvilc: --metrics/--profile require --sim <N>, "
                "--replay, or --prove\n");
        return kExitUsage;
    }
    if ((oo.stats_json || !oo.slice_channel.empty() ||
         !oo.hot_path.empty()) &&
        !runs_sim) {
        fprintf(stderr,
                "anvilc: --stats-json/--slice/--profile-hot "
                "require --sim <N> or --replay\n");
        return kExitUsage;
    }
    if (!oo.slice_channel.empty() && vcd_path.empty()) {
        fprintf(stderr, "anvilc: --slice requires --vcd <file>\n");
        return kExitUsage;
    }
    if (emit_cpp &&
        (runs_sim || !check_trace_path.empty() || prove ||
         check_only)) {
        fprintf(stderr, "anvilc: --emit-cpp is a codegen action; it "
                        "conflicts with --sim/--replay/--check-trace/"
                        "--prove/--check-only\n");
        return kExitUsage;
    }
    if (!runs_sim && check_trace_path.empty() && cov) {
        fprintf(stderr, "anvilc: --cov requires --sim <N>, "
                        "--replay, or --check-trace\n");
        return kExitUsage;
    }
    bool needs_module = runs_sim || !check_trace_path.empty() ||
                        contracts || !contract_specs.empty() ||
                        prove || emit_cpp;
    if ((needs_module || infer_contracts) && check_only) {
        fprintf(stderr, "anvilc: --sim/--replay/--check-trace/"
                        "--contracts/--prove/--infer-contracts "
                        "need codegen (drop --check-only)\n");
        return kExitUsage;
    }

    std::ifstream in(input);
    if (!in) {
        fprintf(stderr, "anvilc: cannot open '%s'\n", input.c_str());
        return kExitIo;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    CompileOptions opts;
    opts.top = top;
    opts.optimize = optimize;
    opts.codegen = !check_only;
    CompileOutput out = compileAnvil(buf.str(), opts);

    // Diagnostics (warnings and notes included).
    fputs(out.diags.render().c_str(), stderr);

    if (trace_flag) {
        for (const auto &[name, check] : out.checks) {
            printf("=== %s ===\n%s\n", name.c_str(),
                   check.traceStr().c_str());
        }
    }
    if (stats) {
        for (const auto &[name, s] : out.opt_stats) {
            printf("%-20s events %4d -> %4d", name.c_str(), s.before,
                   s.after);
            auto mod = out.module(name);
            if (mod) {
                auto r = synth::synthesize(*mod);
                printf("   %s", r.str().c_str());
            }
            printf("\n");
        }
    }

    if (!out.ok) {
        fprintf(stderr, "anvilc: %d error(s)\n",
                out.diags.errorCount());
        return kExitCheckFailure;
    }

    if (!check_only && !emit_cpp) {
        if (output.empty()) {
            if (!needs_module && !infer_contracts)
                fputs(out.systemverilog.c_str(), stdout);
        } else {
            std::ofstream os(output);
            if (!os) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        output.c_str());
                return kExitIo;
            }
            os << out.systemverilog;
            fprintf(stderr, "anvilc: wrote %s\n", output.c_str());
        }
    }

    // The typed contract set: the single spec source shared by the
    // monitors, the offline checker, and the prover.  Only computed
    // when a contract consumer will read it — plain codegen and
    // contract-less --sim/--replay runs skip the re-elaboration it
    // costs.
    bool wants_contracts = infer_contracts || prove || contracts ||
        !contract_specs.empty() || !check_trace_path.empty();
    formal::ContractSet typed;
    if (wants_contracts)
        typed = formal::inferContracts(out.program, out.top);
    if (infer_contracts) {
        printf("infer-contracts: %s: %zu channel(s)\n",
               typed.top.c_str(), typed.channels.size());
        fputs(typed.str().c_str(), stdout);
        if (!needs_module)
            return kExitOk;
    }

    if (needs_module) {
        rtl::ModulePtr mod = out.module(out.top);
        if (!mod) {
            fprintf(stderr, "anvilc: no module for top '%s'\n",
                    out.top.c_str());
            return kExitCheckFailure;
        }
        if (emit_cpp) {
            rtl::Netlist nl(*mod);
            std::string kernel = codegen::emitCppKernel(nl, out.top);
            if (output.empty()) {
                fputs(kernel.c_str(), stdout);
            } else {
                std::ofstream os(output);
                if (!os) {
                    fprintf(stderr, "anvilc: cannot write '%s'\n",
                            output.c_str());
                    return kExitIo;
                }
                os << kernel;
                fprintf(stderr, "anvilc: wrote %s\n",
                        output.c_str());
            }
            return kExitOk;
        }
        if (prove)
            return proveDesign(mod, contract_specs, &typed,
                               contracts, prove_k, prove_report,
                               vcd_path, sweep_mode, sweep_threads,
                               oo);
        if (!check_trace_path.empty())
            return checkTraceFile(mod, check_trace_path, contracts,
                                  contract_specs, &typed, cov);
        if (farm_workers > 0)
            return farm(mod, sim_cycles, farm_workers,
                        seed_base_set ? seed_base : seed, cov,
                        stats, contracts, contract_specs, &typed,
                        sweep_mode, sweep_threads, compiled_backend,
                        oo);
        if (!replay_path.empty())
            return replay(mod, replay_path, sim_cycles, vcd_path,
                          cov, stats, contracts, contract_specs,
                          &typed, sweep_mode, sweep_threads,
                          compiled_backend, oo);
        if (sim_cycles > 0)
            return simulate(mod, sim_cycles, seed, vcd_path, cov,
                            stats, contracts, contract_specs,
                            &typed, sweep_mode, sweep_threads,
                            compiled_backend, oo);
        // --contracts / --contract alone: print the contract set.
        rtl::Sim sim(mod);
        std::vector<trace::ContractSpec> specs;
        if (!resolveContracts(contract_specs, sim.netlist(), &typed,
                              true, &specs))
            return kExitUsage;
    }
    return kExitOk;
}
