/**
 * @file
 * anvilc — the Anvil compiler command-line driver.
 *
 * Usage:
 *   anvilc [options] <input.anvil>
 *     -o <file>      write generated SystemVerilog to <file>
 *     --top <proc>   top process (default: last defined)
 *     --no-opt       skip the Fig. 8 event-graph passes
 *     --trace        print the timing-check derivation
 *     --stats        print event-graph, synthesis, and (with --sim)
 *                    simulation/coverage statistics
 *     --check-only   type check without generating code
 *     --sim <N>      simulate N cycles under a seeded random
 *                    testbench after compiling
 *     --seed <S>     testbench seed (default 1)
 *     --vcd <file>   write a VCD waveform of the simulation
 *     --cov          print the coverage report after simulation
 *
 * Exit codes: 0 success; 1 check failure (type/compile errors);
 * 2 usage error; 3 I/O error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "anvil/compiler.h"
#include "synth/cost_model.h"
#include "tb/testbench.h"

using namespace anvil;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitCheckFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

void
usage()
{
    fprintf(stderr,
            "usage: anvilc [options] <input.anvil>\n"
            "  -o <file>      write SystemVerilog to <file>\n"
            "  --top <proc>   top process (default: last defined)\n"
            "  --no-opt       skip event-graph optimizations\n"
            "  --trace        print the timing-check derivation\n"
            "  --stats        print event-graph/synthesis stats (and\n"
            "                 sim/coverage summaries with --sim)\n"
            "  --check-only   type check only\n"
            "  --sim <N>      simulate N cycles under a random\n"
            "                 testbench\n"
            "  --seed <S>     testbench seed (default 1)\n"
            "  --vcd <file>   write a VCD waveform of the simulation\n"
            "  --cov          print the coverage report\n"
            "exit codes: 0 ok, 1 check failure, 2 usage, 3 I/O "
            "error\n");
}

/** Random-testbench run over the compiled top module. */
int
simulate(const rtl::ModulePtr &mod, long cycles, uint64_t seed,
         const std::string &vcd_path, bool cov, bool stats)
{
    tb::Testbench bench(mod, seed);
    for (const auto &in : bench.sim().inputNames())
        bench.driveRandom(in);

    tb::Coverage *coverage = nullptr;
    if (cov || stats)
        coverage = &bench.coverage();

    std::ofstream vcd_os;
    if (!vcd_path.empty()) {
        vcd_os.open(vcd_path);
        if (!vcd_os) {
            fprintf(stderr, "anvilc: cannot write '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        bench.attachVcd(vcd_os);
    }

    tb::TbResult result = bench.run(static_cast<uint64_t>(cycles));

    printf("sim: %llu cycles, %llu toggles, %zu dprint line(s)\n",
           (unsigned long long)result.cycles,
           (unsigned long long)bench.sim().totalToggles(),
           bench.sim().log().size());
    if (stats && coverage)
        printf("sim-summary %s\n", coverage->summaryJson().c_str());
    if (cov && coverage)
        fputs(coverage->report().c_str(), stdout);
    if (!vcd_path.empty()) {
        vcd_os.flush();
        if (!vcd_os.good()) {
            fprintf(stderr, "anvilc: error writing '%s'\n",
                    vcd_path.c_str());
            return kExitIo;
        }
        fprintf(stderr, "anvilc: wrote %s\n", vcd_path.c_str());
    }
    if (!result.ok()) {
        fprintf(stderr, "anvilc: %s\n", result.summary().c_str());
        return kExitCheckFailure;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, output, top, vcd_path;
    bool optimize = true, trace = false, stats = false;
    bool check_only = false, cov = false;
    long sim_cycles = 0;
    uint64_t seed = 1;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--top" && i + 1 < argc) {
            top = argv[++i];
        } else if (arg == "--no-opt") {
            optimize = false;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--check-only") {
            check_only = true;
        } else if (arg == "--sim" && i + 1 < argc) {
            sim_cycles = atol(argv[++i]);
            if (sim_cycles <= 0) {
                fprintf(stderr, "anvilc: bad --sim cycle count\n");
                return kExitUsage;
            }
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--vcd" && i + 1 < argc) {
            vcd_path = argv[++i];
        } else if (arg == "--cov") {
            cov = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return kExitOk;
        } else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "anvilc: unknown option '%s'\n",
                    arg.c_str());
            usage();
            return kExitUsage;
        } else if (input.empty()) {
            input = arg;
        } else {
            fprintf(stderr, "anvilc: multiple inputs\n");
            return kExitUsage;
        }
    }
    if (input.empty()) {
        usage();
        return kExitUsage;
    }
    if (sim_cycles == 0 && (cov || !vcd_path.empty() || seed != 1)) {
        fprintf(stderr,
                "anvilc: --vcd/--cov/--seed require --sim <N>\n");
        return kExitUsage;
    }

    std::ifstream in(input);
    if (!in) {
        fprintf(stderr, "anvilc: cannot open '%s'\n", input.c_str());
        return kExitIo;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    CompileOptions opts;
    opts.top = top;
    opts.optimize = optimize;
    opts.codegen = !check_only;
    CompileOutput out = compileAnvil(buf.str(), opts);

    // Diagnostics (warnings and notes included).
    fputs(out.diags.render().c_str(), stderr);

    if (trace) {
        for (const auto &[name, check] : out.checks) {
            printf("=== %s ===\n%s\n", name.c_str(),
                   check.traceStr().c_str());
        }
    }
    if (stats) {
        for (const auto &[name, s] : out.opt_stats) {
            printf("%-20s events %4d -> %4d", name.c_str(), s.before,
                   s.after);
            auto mod = out.module(name);
            if (mod) {
                auto r = synth::synthesize(*mod);
                printf("   %s", r.str().c_str());
            }
            printf("\n");
        }
    }

    if (!out.ok) {
        fprintf(stderr, "anvilc: %d error(s)\n",
                out.diags.errorCount());
        return kExitCheckFailure;
    }

    if (!check_only) {
        if (output.empty()) {
            if (sim_cycles == 0)
                fputs(out.systemverilog.c_str(), stdout);
        } else {
            std::ofstream os(output);
            if (!os) {
                fprintf(stderr, "anvilc: cannot write '%s'\n",
                        output.c_str());
                return kExitIo;
            }
            os << out.systemverilog;
            fprintf(stderr, "anvilc: wrote %s\n", output.c_str());
        }
    }

    if (sim_cycles > 0) {
        if (check_only) {
            fprintf(stderr, "anvilc: --sim needs codegen "
                            "(drop --check-only)\n");
            return kExitUsage;
        }
        rtl::ModulePtr mod = out.module(out.top);
        if (!mod) {
            fprintf(stderr, "anvilc: no module for top '%s'\n",
                    out.top.c_str());
            return kExitCheckFailure;
        }
        return simulate(mod, sim_cycles, seed, vcd_path, cov, stats);
    }
    return kExitOk;
}
