/**
 * @file
 * Shared run machinery for anvilc simulation commands and the
 * in-process farm fan-out (`anvilc --farm N`).
 *
 * A farm shares one immutable rtl::Netlist (and, with the compiled
 * backend, one JIT kernel) across N per-worker rtl::Sim instances —
 * elaboration and compilation are paid once, the per-worker state is
 * just the runtime value tables.  Each worker runs the standard
 * random testbench at its own seed (seed_base + worker) with the
 * full observer stack attached — contract monitor, coverage,
 * assertion triage, rolling activity — and serializes everything it
 * observed into an "anvil-events-v1" stream (obs::EventSink).  The
 * streams feed an obs::Merger, whose merged artifacts are
 * byte-compatible with single-run output; `anvilc --farm 1` and a
 * plain `anvilc --sim` at the same seed produce identical coverage,
 * metrics, and summary bytes.
 *
 * collectRunMetrics / emitRunTail are the single-run tail too, so
 * the per-worker stream and the `--metrics`/`--stats-json` artifacts
 * can never drift apart.
 */

#ifndef ANVIL_ANVIL_SIM_RUNNER_H
#define ANVIL_ANVIL_SIM_RUNNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "obs/activity.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/triage.h"
#include "rtl/interp.h"
#include "tb/testbench.h"
#include "trace/contracts.h"

namespace anvil {
namespace obs {
class EventSink;
class Merger;
class TraceProfiler;
} // namespace obs

namespace run {

/**
 * Assemble the metrics registry from every spine a run exposes.
 * Null spines (no coverage, no profiler, no plugins) skip their
 * sections; what remains matches the single-run layout exactly.
 */
void collectRunMetrics(obs::MetricsRegistry &reg, tb::Testbench &bench,
                       const tb::TbResult &result,
                       const tb::Coverage *coverage,
                       const obs::TraceProfiler *profiler,
                       const codegen::JitResult *jit, uint64_t wall_ns,
                       const obs::RollingActivity *activity,
                       const obs::AssertionTriage *triage);

/**
 * Emit the end-of-run event tail: coverage snapshot, metrics
 * snapshot, per-level activity, run_end.  Call after
 * bench.feed().finish().
 */
void emitRunTail(obs::EventSink &sink, tb::Testbench &bench,
                 const tb::TbResult &result,
                 const tb::Coverage *coverage,
                 const obs::MetricsRegistry &reg, uint64_t wall_ns);

/**
 * Resolve `--dump-on` trigger specs onto a flight recorder:
 * "VIOLATION" polls the bench's total failure count (contract
 * violations, scoreboard and assertion failures), "cover:NAME" polls
 * the named cover point's hit count.  An empty spec list means
 * VIOLATION.  Returns false (with *err set) on an unknown spec or a
 * cover trigger whose point does not exist (or coverage is off).
 */
bool attachFlightTriggers(obs::FlightRecorder &rec,
                          tb::Testbench &bench,
                          const tb::Coverage *coverage,
                          const std::vector<std::string> &specs,
                          std::string *err);

/** One worker's run configuration. */
struct JobConfig
{
    rtl::ModulePtr top;
    /** Prebuilt immutable netlist; null builds a private one. */
    std::shared_ptr<const rtl::Netlist> netlist;
    uint64_t seed = 1;
    int worker = 0;
    uint64_t cycles = 0;
    rtl::SweepMode sweep_mode = rtl::SweepMode::Dirty;
    int sweep_threads = 0;
    /** Shared compiled kernel (abi null: interpreter). */
    rtl::KernelRef kernel;
    /** Per-worker jit provenance for the metrics (may be null). */
    const codegen::JitResult *jit = nullptr;
    std::vector<trace::ContractSpec> contracts;
    bool coverage = false;
    /** Rolling-activity window length K; 0 disables the plugin. */
    uint64_t activity_window = 64;
    /** Flight-recorder pre-trigger window; 0 disables the recorder. */
    uint64_t flight_pre = 0;
    /** Cycles captured after a trigger before the window flushes. */
    uint64_t flight_post = 8;
    /** Trigger specs ("VIOLATION" / "cover:NAME"); empty means
     *  VIOLATION. */
    std::vector<std::string> flight_triggers;
    /** Window dump path prefix; dumps land at
     *  <prefix>.w<worker>-<n>.vcd.  Empty keeps the dumps
     *  stream-only (window_dump events with no path). */
    std::string flight_out;
};

/** One worker's outcome plus its serialized event stream. */
struct JobResult
{
    int worker = 0;
    uint64_t seed = 0;
    bool ok = false;
    uint64_t cycles = 0;
    uint64_t toggles = 0;
    size_t failures = 0;
    uint64_t wall_ns = 0;
    std::string summary;   // tb::TbResult::summary()
    std::string events;    // the full "anvil-events-v1" stream
};

/** Run one job to completion (thread-safe per job: every spine is
 *  per-instance, the shared netlist and kernel are read-only). */
JobResult runJob(const JobConfig &cfg);

/** Farm fan-out configuration. */
struct FarmConfig
{
    rtl::ModulePtr top;
    /** Prebuilt shared netlist; null elaborates one from `top`
     *  (callers that already elaborated — contract resolution —
     *  pass theirs to avoid doing it twice). */
    std::shared_ptr<const rtl::Netlist> netlist;
    int workers = 1;
    uint64_t seed_base = 1;
    uint64_t cycles = 0;
    rtl::SweepMode sweep_mode = rtl::SweepMode::Dirty;
    int sweep_threads = 0;
    bool compiled_backend = false;
    std::vector<trace::ContractSpec> contracts;
    bool coverage = false;
    uint64_t activity_window = 64;
    /** Flight-recorder knobs, forwarded to every worker (JobConfig
     *  has the field-by-field semantics). */
    uint64_t flight_pre = 0;
    uint64_t flight_post = 8;
    std::vector<std::string> flight_triggers;
    std::string flight_out;
};

/** Farm outcome: per-worker results in worker order. */
struct FarmResult
{
    std::vector<JobResult> jobs;
    uint64_t wall_ns = 0;     // whole-farm elapsed wall time
    std::string jit_note;     // non-empty: degraded to interpreter
    bool anyFailed() const
    {
        for (const JobResult &j : jobs)
            if (!j.ok)
                return true;
        return false;
    }
};

/**
 * Elaborate once, JIT once (when asked — failures degrade to the
 * interpreter with a note), run cfg.workers jobs on their own
 * threads, and feed every event stream into `merger` (worker order,
 * though the merger re-sorts anyway).
 */
FarmResult runFarm(const FarmConfig &cfg, obs::Merger &merger);

} // namespace run
} // namespace anvil

#endif // ANVIL_ANVIL_SIM_RUNNER_H
