#include "anvil/sim_runner.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/merge.h"
#include "obs/profiler.h"
#include "obs/stream.h"
#include "support/strings.h"

namespace anvil {
namespace run {

namespace {

/** The event-driven sweep's activity factor, as the stats line
 *  reports it: nodes evaluated vs. the whole strict table. */
double
activityPct(const rtl::SweepStats &ss)
{
    return ss.strict_nodes
        ? 100.0 * ss.avgNodes() / static_cast<double>(ss.strict_nodes)
        : 0.0;
}

} // namespace

bool
attachFlightTriggers(obs::FlightRecorder &rec, tb::Testbench &bench,
                     const tb::Coverage *coverage,
                     const std::vector<std::string> &specs,
                     std::string *err)
{
    std::vector<std::string> use = specs;
    if (use.empty())
        use.push_back("VIOLATION");
    for (const std::string &spec : use) {
        if (spec == "VIOLATION") {
            tb::Testbench *b = &bench;
            rec.addTrigger("VIOLATION", [b]() {
                return static_cast<uint64_t>(b->totalFailures());
            });
            continue;
        }
        if (spec.rfind("cover:", 0) == 0) {
            std::string name = spec.substr(6);
            if (!coverage) {
                if (err)
                    *err = "--dump-on " + spec +
                           " needs the coverage engine";
                return false;
            }
            bool found = false;
            for (const tb::CoverPoint &p : coverage->covers())
                if (p.name == name) {
                    found = true;
                    break;
                }
            if (!found) {
                if (err)
                    *err = "--dump-on " + spec +
                           ": no such cover point";
                return false;
            }
            const tb::Coverage *cov = coverage;
            rec.addTrigger(spec, [cov, name]() -> uint64_t {
                for (const tb::CoverPoint &p : cov->covers())
                    if (p.name == name)
                        return p.hits;
                return 0;
            });
            continue;
        }
        if (err)
            *err = "bad --dump-on trigger '" + spec +
                   "' (expected VIOLATION or cover:NAME)";
        return false;
    }
    return true;
}

void
collectRunMetrics(obs::MetricsRegistry &reg, tb::Testbench &bench,
                  const tb::TbResult &result,
                  const tb::Coverage *coverage,
                  const obs::TraceProfiler *profiler,
                  const codegen::JitResult *jit, uint64_t wall_ns,
                  const obs::RollingActivity *activity,
                  const obs::AssertionTriage *triage)
{
    const rtl::SweepStats &ss = bench.sim().sweepStats();
    reg.counter("sim.cycles") = result.cycles;
    reg.counter("sim.toggles") = bench.sim().totalToggles();
    reg.counter("sim.dprint_lines") = bench.sim().log().size();
    reg.counter("tb.failures") = result.failures.size();
    reg.counter("sweep.strict_nodes") = ss.strict_nodes;
    reg.counter("sweep.frames") = ss.cycles;
    reg.counter("sweep.nodes_evaluated") = ss.nodes_evaluated;
    reg.counter("sweep.peak_nodes") = ss.peak_nodes;
    reg.counter("sweep.nets_changed") = ss.nets_changed;
    reg.counter("sweep.peak_changed") = ss.peak_changed;
    reg.counter("sweep.sharded_levels") = ss.sharded_levels;
    reg.counter("sweep.kernel_frames") = ss.kernel_frames;
    reg.counter("sweep.dense_fallback_switches") =
        ss.dense_fallback_switches;
    reg.counter("sweep.kernel_dense_frames") = ss.kernel_dense_frames;
    reg.counter("sweep.kernel_fallback_switches") =
        ss.kernel_fallback_switches;
    reg.counter("backend.compiled") =
        bench.sim().kernelAttached() ? 1 : 0;
    reg.gauge("sweep.activity_pct") = activityPct(ss);
    if (jit) {
        reg.counter("jit.cache_hit") = jit->cache_hit ? 1 : 0;
        reg.timerNs("jit.compile") = jit->compile_ns;
    }
    if (coverage) {
        reg.gauge("cov.toggle_pct") = coverage->togglePct();
        reg.gauge("cov.reg_bin_pct") = coverage->regBinPct();
        reg.counter("cov.samples") = coverage->samples();
    }
    for (const obs::ObserverCost &c : bench.feed().costs()) {
        reg.counter("obs." + c.name + ".visits") = c.visits;
        reg.counter("obs." + c.name + ".primes") = c.primes;
        reg.counter("obs." + c.name + ".nets") = c.nets;
        reg.timerNs("obs." + c.name) = c.ns;
    }
    obs::MetricsRegistry::Histogram &lvl =
        reg.histogram("sweep.level_activity");
    const std::vector<uint64_t> &levels =
        bench.feed().levelActivity();
    for (size_t i = 0; i < levels.size(); i++)
        lvl.bump(i, levels[i]);
    if (profiler)
        for (const auto &t : profiler->totals())
            reg.timerNs("phase." + t.name) = t.ns;
    if (activity)
        activity->exportMetrics(reg);
    if (triage)
        triage->exportMetrics(reg);
    reg.timerNs("run.wall") = wall_ns;
}

void
emitRunTail(obs::EventSink &sink, tb::Testbench &bench,
            const tb::TbResult &result, const tb::Coverage *coverage,
            const obs::MetricsRegistry &reg, uint64_t wall_ns)
{
    if (coverage)
        sink.coverage(*coverage);
    sink.metrics(reg);
    if (!bench.feed().levelActivity().empty())
        sink.activity(bench.feed().levelActivity());
    sink.runEnd(result.cycles, bench.sim().totalToggles(),
                result.failures.size(), wall_ns,
                bench.sim().kernelAttached(),
                activityPct(bench.sim().sweepStats()));
}

JobResult
runJob(const JobConfig &cfg)
{
    std::ostringstream es;
    obs::EventSink sink(es);

    // Non-movable spine: heap-construct so nothing relocates under
    // the feed's observer pointers.
    auto bench = std::make_unique<tb::Testbench>(cfg.top, cfg.netlist,
                                                cfg.seed);
    bench->sim().setSweepMode(cfg.sweep_mode, cfg.sweep_threads);
    if (cfg.kernel.abi)
        bench->sim().attachKernel(cfg.kernel);   // false: interpreter

    // Mirror the single-run telemetry spine (anvilc --metrics): a
    // profiler feeds phase timers and the level-activity histogram,
    // keeping worker metrics byte-comparable with single-run ones.
    obs::TraceProfiler profiler(/*record_events=*/false);
    bench->sim().setTelemetry(&profiler);
    bench->feed().setProfiler(&profiler);

    for (const auto &in : bench->sim().inputNames())
        bench->driveRandom(in);

    trace::ContractMonitor *monitor = nullptr;
    if (!cfg.contracts.empty())
        monitor = static_cast<trace::ContractMonitor *>(
            &bench->addMonitor(
                std::make_unique<trace::ContractMonitor>(
                    cfg.contracts, bench->sim())));

    tb::Coverage *cov = cfg.coverage ? &bench->coverage() : nullptr;

    obs::AssertionTriage *triage = nullptr;
    if (monitor)
        triage = static_cast<obs::AssertionTriage *>(
            &bench->attachObserver(
                std::make_unique<obs::AssertionTriage>(*monitor,
                                                       &sink)));
    obs::RollingActivity *activity = nullptr;
    if (cfg.activity_window)
        activity = static_cast<obs::RollingActivity *>(
            &bench->attachObserver(
                std::make_unique<obs::RollingActivity>(
                    cfg.activity_window, &sink)));

    // Flight recorder last, so its trigger poll sees the cycle's
    // monitor and coverage updates.  Dumps go to
    // <prefix>.w<worker>-<n>.vcd and are referenced from the event
    // stream (window_dump), which the merger dedupes by path.
    obs::FlightRecorder *flight = nullptr;
    if (cfg.flight_pre) {
        obs::FlightRecorder::Options fo;
        fo.pre = cfg.flight_pre;
        fo.post = cfg.flight_post;
        auto rec = std::make_unique<obs::FlightRecorder>(
            bench->sim(), fo);
        std::string err;
        if (!attachFlightTriggers(*rec, *bench, cov,
                                  cfg.flight_triggers, &err))
            throw std::runtime_error(err);
        std::string prefix = cfg.flight_out;
        int worker = cfg.worker;
        obs::EventSink *esink = &sink;
        rec->setDumpSink(
            [prefix, worker,
             esink](const obs::FlightRecorder::DumpInfo &d,
                    const std::string &vcd) {
                std::string path;
                if (!prefix.empty()) {
                    path = strfmt("%s.w%d-%d.vcd", prefix.c_str(),
                                  worker, d.index);
                    std::ofstream os(path);
                    os << vcd;
                    os.flush();
                    if (!os.good())
                        path.clear();
                }
                esink->windowDump(d.trigger_cycle, d.trigger, path,
                                  d.from, d.to);
                return path;
            });
        flight = static_cast<obs::FlightRecorder *>(
            &bench->attachObserver(std::move(rec)));
    }

    sink.runBegin(bench->sim().topName(), cfg.worker, cfg.seed,
                  cfg.cycles, bench->sim().sweepMode(),
                  bench->sim().sweepStats().threads);

    uint64_t wall0 = rtl::monotonicNanos();
    tb::TbResult result = bench->run(cfg.cycles);
    uint64_t wall_ns = rtl::monotonicNanos() - wall0;
    bench->feed().finish();

    obs::MetricsRegistry reg;
    collectRunMetrics(reg, *bench, result, cov, &profiler, cfg.jit,
                      wall_ns, activity, triage);
    if (flight)
        flight->exportMetrics(reg);
    emitRunTail(sink, *bench, result, cov, reg, wall_ns);

    JobResult jr;
    jr.worker = cfg.worker;
    jr.seed = cfg.seed;
    jr.ok = result.ok();
    jr.cycles = result.cycles;
    jr.toggles = bench->sim().totalToggles();
    jr.failures = result.failures.size();
    jr.wall_ns = wall_ns;
    jr.summary = result.summary();
    jr.events = es.str();
    return jr;
}

FarmResult
runFarm(const FarmConfig &cfg, obs::Merger &merger)
{
    FarmResult fr;
    uint64_t wall0 = rtl::monotonicNanos();

    // Elaborate once: every worker rides this immutable netlist.
    std::shared_ptr<const rtl::Netlist> netlist = cfg.netlist;
    if (!netlist)
        netlist = std::make_shared<const rtl::Netlist>(*cfg.top);

    // JIT once; the kernel object is shared, each Sim gets its own
    // kernel context on attach.
    codegen::JitResult jit;
    rtl::KernelRef kernel;
    if (cfg.compiled_backend) {
        jit = codegen::jitCompileKernel(*netlist);
        if (jit.kernel)
            kernel = codegen::kernelRef(jit.kernel);
        else
            fr.jit_note = jit.error.empty() ? "jit unavailable"
                                            : jit.error;
    }

    std::vector<JobConfig> jobs(static_cast<size_t>(cfg.workers));
    for (int w = 0; w < cfg.workers; w++) {
        JobConfig &jc = jobs[static_cast<size_t>(w)];
        jc.top = cfg.top;
        jc.netlist = netlist;
        jc.seed = cfg.seed_base + static_cast<uint64_t>(w);
        jc.worker = w;
        jc.cycles = cfg.cycles;
        jc.sweep_mode = cfg.sweep_mode;
        jc.sweep_threads = cfg.sweep_threads;
        jc.kernel = kernel;
        jc.jit = cfg.compiled_backend ? &jit : nullptr;
        jc.contracts = cfg.contracts;
        jc.coverage = cfg.coverage;
        jc.activity_window = cfg.activity_window;
        jc.flight_pre = cfg.flight_pre;
        jc.flight_post = cfg.flight_post;
        jc.flight_triggers = cfg.flight_triggers;
        jc.flight_out = cfg.flight_out;
    }

    fr.jobs.resize(jobs.size());
    std::vector<std::thread> threads;
    threads.reserve(jobs.size());
    for (size_t w = 0; w < jobs.size(); w++)
        threads.emplace_back([&fr, &jobs, w]() {
            try {
                fr.jobs[w] = runJob(jobs[w]);
            } catch (const std::exception &e) {
                fr.jobs[w].worker = static_cast<int>(w);
                fr.jobs[w].seed = jobs[w].seed;
                fr.jobs[w].summary =
                    strfmt("worker exception: %s", e.what());
            }
        });
    for (std::thread &t : threads)
        t.join();
    fr.wall_ns = rtl::monotonicNanos() - wall0;

    for (const JobResult &j : fr.jobs)
        if (!j.events.empty())
            merger.addStreamText(j.events,
                                 strfmt("worker-%d", j.worker));
    return fr;
}

} // namespace run
} // namespace anvil
