/**
 * @file
 * Synthesis cost model: estimates area, maximum frequency, and power
 * for a flattened RTL design.
 *
 * This substitutes the commercial 22 nm ASIC flow used in the paper's
 * evaluation (§7.3).  Both Anvil-generated modules and the handwritten
 * baselines are lowered to the same RTL IR and priced by the same
 * model, so the relative overheads Table 1 reports are meaningful even
 * though absolute um^2 / mW are model constants, not PDK data.
 *
 * Model summary:
 *  - area: per-operator gate-equivalent (GE) counts scaled by width,
 *    4.5 GE per flop bit, 0.2 um^2 per GE (22 nm-class density);
 *  - fmax: longest register-to-register combinational path, with
 *    per-operator level delays at a 22 nm-class 15 ps gate delay;
 *  - power: activity-based dynamic power using bit-toggle counts
 *    measured by the RTL interpreter, plus area-proportional leakage.
 */

#ifndef ANVIL_SYNTH_COST_MODEL_H
#define ANVIL_SYNTH_COST_MODEL_H

#include <string>

#include "rtl/rtl.h"

namespace anvil {
namespace synth {

/** Synthesis estimates for one design. */
struct SynthReport
{
    double comb_area_um2 = 0;
    double seq_area_um2 = 0;
    double crit_path_ps = 0;

    double areaUm2() const { return comb_area_um2 + seq_area_um2; }

    /** Maximum frequency in MHz. */
    double fmaxMhz() const;

    /**
     * Power in mW at the given frequency with the given measured
     * switching activity (bit toggles per cycle).
     */
    double powerMw(double freq_mhz, double toggles_per_cycle) const;

    std::string str() const;
};

/** Analyze a module hierarchy (flattened internally). */
SynthReport synthesize(const rtl::Module &top);

} // namespace synth
} // namespace anvil

#endif // ANVIL_SYNTH_COST_MODEL_H
