#include "synth/cost_model.h"

#include <cmath>
#include <map>
#include <set>

#include "support/strings.h"

namespace anvil {
namespace synth {

namespace {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Op;

// 22 nm-class model constants.
constexpr double kUm2PerGe = 0.2;      // NAND2-equivalent footprint
constexpr double kGePerFlopBit = 4.5;
constexpr double kGateDelayPs = 15.0;
constexpr double kClockOverheadPs = 55.0;  // setup + clk->q + skew
constexpr double kDynPjPerToggle = 0.00045; // nJ per bit toggle (scaled)
constexpr double kLeakMwPerUm2 = 0.00008;

int
log2ceil(int w)
{
    int l = 0;
    while ((1 << l) < w)
        l++;
    return std::max(l, 1);
}

/** Gate-equivalents for one operator application. */
double
opGates(Op op, int w)
{
    switch (op) {
      case Op::Not: return 0.5 * w;
      case Op::RedOr: return 1.0 * (w - 1) + 1;
      case Op::RedAnd: return 1.0 * (w - 1) + 1;
      case Op::And: return 1.0 * w;
      case Op::Or: return 1.0 * w;
      case Op::Xor: return 2.2 * w;
      case Op::Add: return 6.5 * w;
      case Op::Sub: return 7.0 * w;
      case Op::Mul: return 4.8 * w * w / 2.0;
      case Op::Eq: return 2.5 * w;
      case Op::Ne: return 2.5 * w;
      case Op::Lt: return 3.0 * w;
      case Op::Le: return 3.0 * w;
      case Op::Gt: return 3.0 * w;
      case Op::Ge: return 3.0 * w;
      case Op::Shl: return 2.2 * w * log2ceil(std::max(w, 2));
      case Op::Shr: return 2.2 * w * log2ceil(std::max(w, 2));
    }
    return 1.0 * w;
}

/** Logic levels contributed by one operator application. */
double
opLevels(Op op, int w)
{
    switch (op) {
      case Op::Not: return 0.6;
      case Op::RedOr: return log2ceil(std::max(w, 2));
      case Op::RedAnd: return log2ceil(std::max(w, 2));
      case Op::And: return 1.0;
      case Op::Or: return 1.0;
      case Op::Xor: return 1.4;
      case Op::Add: return 2.0 * log2ceil(std::max(w, 2)) + 2;
      case Op::Sub: return 2.0 * log2ceil(std::max(w, 2)) + 2.4;
      case Op::Mul: return 4.0 * log2ceil(std::max(w, 2)) + 4;
      case Op::Eq: return log2ceil(std::max(w, 2)) + 1.4;
      case Op::Ne: return log2ceil(std::max(w, 2)) + 1.4;
      case Op::Lt: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Le: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Gt: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Ge: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Shl: return log2ceil(std::max(w, 2)) + 1;
      case Op::Shr: return log2ceil(std::max(w, 2)) + 1;
    }
    return 1.0;
}

/** Flattens the hierarchy and accumulates area and path depth. */
class Analyzer
{
  public:
    SynthReport run(const rtl::Module &top)
    {
        flatten(top, "");
        // Depth of every wire and register-update cone; the critical
        // path is the deepest cone plus clocking overhead.
        double worst = 0;
        for (const auto &[name, w] : _wires)
            worst = std::max(worst, wireDepth(name));
        for (const auto &[e, scope] : _update_exprs)
            worst = std::max(worst, exprDepth(e, scope));
        _report.crit_path_ps = worst * kGateDelayPs + kClockOverheadPs;
        return _report;
    }

  private:
    struct FlatWire
    {
        ExprPtr expr;
        std::string scope;
    };

    void flatten(const rtl::Module &m, const std::string &prefix)
    {
        for (const auto &r : m.regs) {
            _report.seq_area_um2 += r.width * kGePerFlopBit * kUm2PerGe;
            _regs.insert(prefix + r.name);
        }
        for (const auto &w : m.wires) {
            _wires[prefix + w.name] = {w.expr, prefix};
            countArea(w.expr);
        }
        for (const auto &u : m.updates) {
            countArea(u.enable);
            countArea(u.value);
            _update_exprs.emplace_back(u.enable, prefix);
            _update_exprs.emplace_back(u.value, prefix);
            // Enable gating adds a mux in front of the flop.
            _report.comb_area_um2 +=
                opGates(Op::And, exprWidth(u.value)) * kUm2PerGe;
        }
        for (const auto &inst : m.instances) {
            std::string child_prefix = prefix + inst.name + ".";
            flatten(*inst.module, child_prefix);
            for (const auto &[port, e] : inst.inputs) {
                _wires[child_prefix + port] = {e, prefix};
                countArea(e);
            }
            for (const auto &[parent, child] : inst.outputs)
                _aliases[prefix + parent] = child_prefix + child;
        }
    }

    int exprWidth(const ExprPtr &e) const { return e->width; }

    /** Structural hash for CSE: synthesis shares equal cones. */
    uint64_t exprHash(const ExprPtr &e)
    {
        auto it = _hash.find(e.get());
        if (it != _hash.end())
            return it->second;
        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        };
        mix(static_cast<uint64_t>(e->kind));
        mix(static_cast<uint64_t>(e->op));
        mix(static_cast<uint64_t>(e->width));
        mix(static_cast<uint64_t>(e->lo));
        if (e->kind == Expr::Kind::Const)
            mix(e->value.toUint64() ^ e->value.word(1));
        if (e->kind == Expr::Kind::Ref)
            mix(std::hash<std::string>{}(e->name));
        if (e->rom)
            mix(reinterpret_cast<uintptr_t>(e->rom.get()));
        for (const auto &a : e->args)
            mix(exprHash(a));
        _hash[e.get()] = h;
        return h;
    }

    void countArea(const ExprPtr &e)
    {
        if (!e || !_counted.insert(e.get()).second)
            return;
        for (const auto &a : e->args)
            countArea(a);
        // Common-subexpression elimination: structurally identical
        // cones synthesize to one instance.
        if (!_counted_hashes.insert(exprHash(e)).second)
            return;
        double ge = 0;
        switch (e->kind) {
          case Expr::Kind::Unop:
            ge = opGates(e->op, e->args[0]->width);
            break;
          case Expr::Kind::Binop:
            ge = opGates(e->op, e->width);
            break;
          case Expr::Kind::Mux:
            ge = 2.2 * e->width;
            break;
          case Expr::Kind::Rom:
            // LUT-mapped ROM: entries x width at a packed density.
            ge = 0.32 * static_cast<double>(e->rom->size()) * e->width;
            break;
          default:
            break;  // consts, refs, slices, concats are free
        }
        _report.comb_area_um2 += ge * kUm2PerGe;
    }

    std::string resolve(const std::string &scope,
                        const std::string &name) const
    {
        std::string flat = scope + name;
        auto it = _aliases.find(flat);
        while (it != _aliases.end()) {
            flat = it->second;
            it = _aliases.find(flat);
        }
        return flat;
    }

    double wireDepth(const std::string &flat)
    {
        auto memo = _depth.find(flat);
        if (memo != _depth.end())
            return memo->second;
        auto it = _wires.find(flat);
        if (it == _wires.end())
            return 0;   // register or input: path starts here
        _depth[flat] = 0;  // break defensive cycles
        double d = exprDepth(it->second.expr, it->second.scope);
        _depth[flat] = d;
        return d;
    }

    double exprDepth(const ExprPtr &e, const std::string &scope)
    {
        switch (e->kind) {
          case Expr::Kind::Const:
            return 0;
          case Expr::Kind::Ref:
            return wireDepth(resolve(scope, e->name));
          case Expr::Kind::Unop:
            return exprDepth(e->args[0], scope) +
                opLevels(e->op, e->args[0]->width);
          case Expr::Kind::Binop:
            return std::max(exprDepth(e->args[0], scope),
                            exprDepth(e->args[1], scope)) +
                opLevels(e->op, e->width);
          case Expr::Kind::Mux: {
            double d = 0;
            for (const auto &a : e->args)
                d = std::max(d, exprDepth(a, scope));
            return d + 1.4;
          }
          case Expr::Kind::Slice:
            return exprDepth(e->args[0], scope);
          case Expr::Kind::Concat: {
            double d = 0;
            for (const auto &a : e->args)
                d = std::max(d, exprDepth(a, scope));
            return d;
          }
          case Expr::Kind::Rom:
            return exprDepth(e->args[0], scope) +
                log2ceil(static_cast<int>(e->rom->size())) * 0.9;
        }
        return 0;
    }

    SynthReport _report;
    std::vector<std::pair<ExprPtr, std::string>> _update_exprs;
    std::map<std::string, FlatWire> _wires;
    std::set<std::string> _regs;
    std::map<std::string, std::string> _aliases;
    std::set<const Expr *> _counted;
    std::map<const Expr *, uint64_t> _hash;
    std::set<uint64_t> _counted_hashes;
    std::map<std::string, double> _depth;
};

} // namespace

double
SynthReport::fmaxMhz() const
{
    double ps = std::max(crit_path_ps, kClockOverheadPs + 10.0);
    return 1e6 / ps;
}

double
SynthReport::powerMw(double freq_mhz, double toggles_per_cycle) const
{
    double dyn = toggles_per_cycle * kDynPjPerToggle * freq_mhz * 1e-3;
    double leak = areaUm2() * kLeakMwPerUm2;
    // Clock tree power scales with sequential area and frequency.
    double clk = seq_area_um2 * 2.4e-7 * freq_mhz;
    return dyn * 1e3 + leak + clk;
}

std::string
SynthReport::str() const
{
    return strfmt("area=%.0fum2 (comb=%.0f seq=%.0f) fmax=%.0fMHz",
                  areaUm2(), comb_area_um2, seq_area_um2, fmaxMhz());
}

SynthReport
synthesize(const rtl::Module &top)
{
    Analyzer a;
    return a.run(top);
}

} // namespace synth
} // namespace anvil
