#include "synth/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rtl/netlist.h"
#include "support/strings.h"

namespace anvil {
namespace synth {

namespace {

using rtl::Net;
using rtl::NetId;
using rtl::Netlist;
using rtl::Op;

// 22 nm-class model constants.
constexpr double kUm2PerGe = 0.2;      // NAND2-equivalent footprint
constexpr double kGePerFlopBit = 4.5;
constexpr double kGateDelayPs = 15.0;
constexpr double kClockOverheadPs = 55.0;  // setup + clk->q + skew
constexpr double kDynPjPerToggle = 0.00045; // nJ per bit toggle (scaled)
constexpr double kLeakMwPerUm2 = 0.00008;

int
log2ceil(int w)
{
    int l = 0;
    while ((1 << l) < w)
        l++;
    return std::max(l, 1);
}

/** Gate-equivalents for one operator application. */
double
opGates(Op op, int w)
{
    switch (op) {
      case Op::Not: return 0.5 * w;
      case Op::RedOr: return 1.0 * (w - 1) + 1;
      case Op::RedAnd: return 1.0 * (w - 1) + 1;
      case Op::And: return 1.0 * w;
      case Op::Or: return 1.0 * w;
      case Op::Xor: return 2.2 * w;
      case Op::Add: return 6.5 * w;
      case Op::Sub: return 7.0 * w;
      case Op::Mul: return 4.8 * w * w / 2.0;
      case Op::Eq: return 2.5 * w;
      case Op::Ne: return 2.5 * w;
      case Op::Lt: return 3.0 * w;
      case Op::Le: return 3.0 * w;
      case Op::Gt: return 3.0 * w;
      case Op::Ge: return 3.0 * w;
      case Op::Shl: return 2.2 * w * log2ceil(std::max(w, 2));
      case Op::Shr: return 2.2 * w * log2ceil(std::max(w, 2));
    }
    return 1.0 * w;
}

/** Logic levels contributed by one operator application. */
double
opLevels(Op op, int w)
{
    switch (op) {
      case Op::Not: return 0.6;
      case Op::RedOr: return log2ceil(std::max(w, 2));
      case Op::RedAnd: return log2ceil(std::max(w, 2));
      case Op::And: return 1.0;
      case Op::Or: return 1.0;
      case Op::Xor: return 1.4;
      case Op::Add: return 2.0 * log2ceil(std::max(w, 2)) + 2;
      case Op::Sub: return 2.0 * log2ceil(std::max(w, 2)) + 2.4;
      case Op::Mul: return 4.0 * log2ceil(std::max(w, 2)) + 4;
      case Op::Eq: return log2ceil(std::max(w, 2)) + 1.4;
      case Op::Ne: return log2ceil(std::max(w, 2)) + 1.4;
      case Op::Lt: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Le: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Gt: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Ge: return log2ceil(std::max(w, 2)) + 2.0;
      case Op::Shl: return log2ceil(std::max(w, 2)) + 1;
      case Op::Shr: return log2ceil(std::max(w, 2)) + 1;
    }
    return 1.0;
}

/**
 * Prices a design over the compiled netlist's interned table: the
 * same flattened form the simulator executes, so no re-flattening
 * with string maps happens here.
 *
 * Area applies common-subexpression elimination by structural hash:
 * two cones with the same shape over the same named source signals
 * synthesize to one instance.  Cones end at named signals (a named
 * operand hashes as a leaf by its flat name), so equal shapes over
 * different signals stay distinct hardware, as on silicon.  Depth is
 * a memoized walk over operand ids; defensive cycles (lazy nets)
 * break to zero exactly like the old string-keyed analyzer.
 */
class Analyzer
{
  public:
    SynthReport run(const rtl::Module &top)
    {
        Netlist nl(top);
        const auto &nets = nl.nets();
        _hash.assign(nets.size(), 0);
        _hash_done.assign(nets.size(), 0);
        _depth.assign(nets.size(), 0.0);
        _depth_done.assign(nets.size(), 0);
        _visiting.assign(nets.size(), 0);

        for (NetId r : nl.regs())
            _report.seq_area_um2 +=
                nl.net(r).width * kGePerFlopBit * kUm2PerGe;

        // Synthesized logic is what wires and register updates reach;
        // simulation-only prints are not priced.
        std::vector<uint8_t> reach(nets.size(), 0);
        std::vector<NetId> work;
        auto seed = [&](NetId id) {
            if (id != rtl::kNoNet && !reach[static_cast<size_t>(id)]) {
                reach[static_cast<size_t>(id)] = 1;
                work.push_back(id);
            }
        };
        for (NetId id : nl.wireNets())
            seed(id);
        for (const auto &u : nl.updates()) {
            seed(u.enable);
            seed(u.value);
        }
        while (!work.empty()) {
            NetId id = work.back();
            work.pop_back();
            const Net &n = nl.net(id);
            seed(n.a);
            seed(n.b);
            seed(n.c);
            for (NetId o : n.cargs)
                seed(o);
        }

        double worst = 0;
        for (size_t i = 0; i < nets.size(); i++) {
            if (!reach[i])
                continue;
            NetId id = static_cast<NetId>(i);
            countArea(nl, id);
            worst = std::max(worst, depth(nl, id));
        }
        for (const auto &u : nl.updates()) {
            // Enable gating adds a mux in front of the flop.
            _report.comb_area_um2 +=
                opGates(Op::And, nl.net(u.value).width) * kUm2PerGe;
        }
        _report.crit_path_ps = worst * kGateDelayPs + kClockOverheadPs;
        return _report;
    }

  private:
    /**
     * Structural hash of one net.  Named nets referenced as
     * operands hash as leaves by their flat name (the CSE unit of
     * the expression-level analyzer: a cone ends at named signals),
     * so equal shapes over different signals never merge.
     */
    uint64_t hashOf(const Netlist &nl, NetId id)
    {
        size_t i = static_cast<size_t>(id);
        if (_hash_done[i])
            return _hash[i];
        _hash_done[i] = 1;   // break defensive cycles
        const Net &n = nl.net(id);

        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        };
        mix(static_cast<uint64_t>(n.kind));
        mix(static_cast<uint64_t>(n.op));
        mix(static_cast<uint64_t>(n.width));
        mix(static_cast<uint64_t>(n.lo));
        if (n.kind == Net::Kind::Const) {
            const BitVec &v = nl.initValues()[i];
            for (int w = 0; w < v.words(); w++)
                mix(v.word(w));
        }
        if (n.rom)
            mix(reinterpret_cast<uintptr_t>(n.rom.get()));

        auto operand = [&](NetId o) {
            if (o == rtl::kNoNet) {
                mix(0x517cc1b727220a95ull);
                return;
            }
            const std::string &name = nl.nameOf(o);
            if (!name.empty())
                mix(std::hash<std::string>{}(name));
            else
                mix(hashOf(nl, o));
        };
        operand(n.a);
        operand(n.b);
        operand(n.c);
        for (NetId o : n.cargs)
            operand(o);

        _hash[i] = h;
        return h;
    }

    void countArea(const Netlist &nl, NetId id)
    {
        const Net &n = nl.net(id);
        double ge = 0;
        switch (n.kind) {
          case Net::Kind::Unop:
            ge = opGates(n.op, nl.net(n.a).width);
            break;
          case Net::Kind::Binop:
            ge = opGates(n.op, n.width);
            break;
          case Net::Kind::Mux:
            ge = 2.2 * n.width;
            break;
          case Net::Kind::Rom:
            // LUT-mapped ROM: entries x width at a packed density.
            ge = 0.32 * static_cast<double>(n.rom->size()) * n.width;
            break;
          default:
            return;  // consts, sources, copies, slices, concats free
        }
        // Common-subexpression elimination: structurally identical
        // cones synthesize to one instance (named wires are Copy
        // roots and free, so counted nodes are always anonymous).
        if (!_counted.insert(hashOf(nl, id)).second)
            return;
        _report.comb_area_um2 += ge * kUm2PerGe;
    }

    double depth(const Netlist &nl, NetId id)
    {
        size_t i = static_cast<size_t>(id);
        if (_depth_done[i])
            return _depth[i];
        if (_visiting[i])
            return 0;   // break defensive cycles, like the old memo
        _visiting[i] = 1;
        const Net &n = nl.net(id);

        double d = 0;
        switch (n.kind) {
          case Net::Kind::Const:
          case Net::Kind::Input:
          case Net::Kind::Reg:
          case Net::Kind::BadRef:
            d = 0;   // path starts at state, inputs, and constants
            break;
          case Net::Kind::Copy:
          case Net::Kind::Slice:
            d = n.a == rtl::kNoNet ? 0 : depth(nl, n.a);
            break;
          case Net::Kind::Unop:
            d = depth(nl, n.a) + opLevels(n.op, nl.net(n.a).width);
            break;
          case Net::Kind::Binop:
            d = std::max(depth(nl, n.a), depth(nl, n.b)) +
                opLevels(n.op, n.width);
            break;
          case Net::Kind::Mux:
            d = std::max({depth(nl, n.a), depth(nl, n.b),
                          depth(nl, n.c)}) + 1.4;
            break;
          case Net::Kind::Concat:
            for (NetId o : n.cargs)
                d = std::max(d, depth(nl, o));
            break;
          case Net::Kind::Rom:
            d = depth(nl, n.a) +
                log2ceil(static_cast<int>(n.rom->size())) * 0.9;
            break;
        }

        _visiting[i] = 0;
        _depth_done[i] = 1;
        _depth[i] = d;
        return d;
    }

    SynthReport _report;
    std::vector<uint64_t> _hash;
    std::vector<uint8_t> _hash_done;
    std::vector<double> _depth;
    std::vector<uint8_t> _depth_done;
    std::vector<uint8_t> _visiting;
    std::set<uint64_t> _counted;
};

} // namespace

double
SynthReport::fmaxMhz() const
{
    double ps = std::max(crit_path_ps, kClockOverheadPs + 10.0);
    return 1e6 / ps;
}

double
SynthReport::powerMw(double freq_mhz, double toggles_per_cycle) const
{
    double dyn = toggles_per_cycle * kDynPjPerToggle * freq_mhz * 1e-3;
    double leak = areaUm2() * kLeakMwPerUm2;
    // Clock tree power scales with sequential area and frequency.
    double clk = seq_area_um2 * 2.4e-7 * freq_mhz;
    return dyn * 1e3 + leak + clk;
}

std::string
SynthReport::str() const
{
    return strfmt("area=%.0fum2 (comb=%.0f seq=%.0f) fmax=%.0fMHz",
                  areaUm2(), comb_area_um2, seq_area_um2, fmaxMhz());
}

SynthReport
synthesize(const rtl::Module &top)
{
    Analyzer a;
    return a.run(top);
}

} // namespace synth
} // namespace anvil
