/**
 * @file
 * The Anvil lexer: converts source text into a token stream.
 */

#ifndef ANVIL_LANG_LEXER_H
#define ANVIL_LANG_LEXER_H

#include <string>
#include <vector>

#include "lang/token.h"
#include "support/diag.h"

namespace anvil {

/**
 * Lexes a complete Anvil source buffer.
 *
 * Supports line comments (`//`), block comments, SystemVerilog-style
 * sized literals (`8'd255`, `32'h100000`, `1'b1`), and all keywords
 * used in the paper's code listings.
 */
class Lexer
{
  public:
    Lexer(const std::string &src, DiagEngine &diags);

    /** Lex the whole buffer; always ends with an Eof token. */
    std::vector<Token> lex();

  private:
    char peek(int off = 0) const;
    char advance();
    bool atEnd() const;
    SrcLoc here() const;

    void lexNumber(std::vector<Token> &out);
    void lexIdent(std::vector<Token> &out);
    void lexString(std::vector<Token> &out);

    const std::string &_src;
    DiagEngine &_diags;
    size_t _pos = 0;
    int _line = 1;
    int _col = 1;
};

} // namespace anvil

#endif // ANVIL_LANG_LEXER_H
