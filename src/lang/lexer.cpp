#include "lang/lexer.h"

#include <cctype>
#include <map>

#include "support/strings.h"

namespace anvil {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Colon: return "':'";
      case Tok::Dot: return "'.'";
      case Tok::At: return "'@'";
      case Tok::Hash: return "'#'";
      case Tok::Arrow: return "'>>'";
      case Tok::DashDash: return "'--'";
      case Tok::Assign: return "':='";
      case Tok::Eq: return "'='";
      case Tok::EqEq: return "'=='";
      case Tok::NotEq: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::Le: return "'<='";
      case Tok::Ge: return "'>='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Caret: return "'^'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Shl: return "'<<'";
      case Tok::Ident: return "identifier";
      case Tok::Number: return "number";
      case Tok::SizedNumber: return "sized number";
      case Tok::String: return "string";
      case Tok::KwChan: return "'chan'";
      case Tok::KwProc: return "'proc'";
      case Tok::KwLoop: return "'loop'";
      case Tok::KwRecursive: return "'recursive'";
      case Tok::KwLet: return "'let'";
      case Tok::KwSet: return "'set'";
      case Tok::KwSend: return "'send'";
      case Tok::KwRecv: return "'recv'";
      case Tok::KwCycle: return "'cycle'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwReg: return "'reg'";
      case Tok::KwSpawn: return "'spawn'";
      case Tok::KwLeft: return "'left'";
      case Tok::KwRight: return "'right'";
      case Tok::KwLogic: return "'logic'";
      case Tok::KwDyn: return "'dyn'";
      case Tok::KwReady: return "'ready'";
      case Tok::KwRecurse: return "'recurse'";
      case Tok::KwDprint: return "'dprint'";
      case Tok::KwType: return "'type'";
      case Tok::Eof: return "end of input";
    }
    return "?";
}

namespace {

const std::map<std::string, Tok> kKeywords = {
    {"chan", Tok::KwChan}, {"proc", Tok::KwProc}, {"loop", Tok::KwLoop},
    {"recursive", Tok::KwRecursive}, {"let", Tok::KwLet},
    {"set", Tok::KwSet}, {"send", Tok::KwSend}, {"recv", Tok::KwRecv},
    {"cycle", Tok::KwCycle}, {"if", Tok::KwIf}, {"else", Tok::KwElse},
    {"reg", Tok::KwReg}, {"spawn", Tok::KwSpawn}, {"left", Tok::KwLeft},
    {"right", Tok::KwRight}, {"logic", Tok::KwLogic}, {"dyn", Tok::KwDyn},
    {"ready", Tok::KwReady}, {"recurse", Tok::KwRecurse},
    {"dprint", Tok::KwDprint}, {"type", Tok::KwType},
};

} // namespace

Lexer::Lexer(const std::string &src, DiagEngine &diags)
    : _src(src), _diags(diags)
{
}

char
Lexer::peek(int off) const
{
    size_t p = _pos + off;
    return p < _src.size() ? _src[p] : '\0';
}

char
Lexer::advance()
{
    char c = _src[_pos++];
    if (c == '\n') {
        _line++;
        _col = 1;
    } else {
        _col++;
    }
    return c;
}

bool
Lexer::atEnd() const
{
    return _pos >= _src.size();
}

SrcLoc
Lexer::here() const
{
    return SrcLoc{_line, _col};
}

void
Lexer::lexNumber(std::vector<Token> &out)
{
    Token t;
    t.loc = here();
    std::string digits;
    while (isdigit(peek()) || peek() == '_') {
        char c = advance();
        if (c != '_')
            digits += c;
    }
    uint64_t dec = std::stoull(digits);
    if (peek() == '\'') {
        // SystemVerilog-style sized literal: <width>'<base><digits>.
        advance();
        char base = advance();
        std::string body;
        while (isalnum(peek()) || peek() == '_') {
            char c = advance();
            if (c != '_')
                body += c;
        }
        t.kind = Tok::SizedNumber;
        t.width = static_cast<int>(dec);
        int radix;
        switch (base) {
          case 'b': radix = 2; break;
          case 'd': radix = 10; break;
          case 'h': radix = 16; break;
          case 'o': radix = 8; break;
          default:
            _diags.error(strfmt("unknown literal base '%c'", base), t.loc);
            radix = 10;
        }
        t.value = body.empty() ? 0 : std::stoull(body, nullptr, radix);
        t.text = digits + "'" + base + body;
    } else {
        t.kind = Tok::Number;
        t.value = dec;
        t.width = 0;
        t.text = digits;
    }
    out.push_back(t);
}

void
Lexer::lexIdent(std::vector<Token> &out)
{
    Token t;
    t.loc = here();
    std::string name;
    while (isalnum(peek()) || peek() == '_')
        name += advance();
    t.text = name;
    auto it = kKeywords.find(name);
    t.kind = it != kKeywords.end() ? it->second : Tok::Ident;
    out.push_back(t);
}

void
Lexer::lexString(std::vector<Token> &out)
{
    Token t;
    t.loc = here();
    t.kind = Tok::String;
    advance(); // opening quote
    while (!atEnd() && peek() != '"')
        t.text += advance();
    if (atEnd())
        _diags.error("unterminated string literal", t.loc);
    else
        advance(); // closing quote
    out.push_back(t);
}

std::vector<Token>
Lexer::lex()
{
    std::vector<Token> out;
    while (!atEnd()) {
        char c = peek();
        if (isspace(c)) {
            advance();
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            SrcLoc start = here();
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (atEnd()) {
                _diags.error("unterminated block comment", start);
            } else {
                advance();
                advance();
            }
            continue;
        }
        if (isdigit(c)) {
            lexNumber(out);
            continue;
        }
        if (isalpha(c) || c == '_') {
            lexIdent(out);
            continue;
        }
        if (c == '"') {
            lexString(out);
            continue;
        }

        Token t;
        t.loc = here();
        auto two = [&](Tok kind, const char *text) {
            advance();
            advance();
            t.kind = kind;
            t.text = text;
        };
        auto one = [&](Tok kind) {
            t.kind = kind;
            t.text = std::string(1, advance());
        };
        switch (c) {
          case '{': one(Tok::LBrace); break;
          case '}': one(Tok::RBrace); break;
          case '(': one(Tok::LParen); break;
          case ')': one(Tok::RParen); break;
          case '[': one(Tok::LBracket); break;
          case ']': one(Tok::RBracket); break;
          case ',': one(Tok::Comma); break;
          case ';': one(Tok::Semi); break;
          case '.': one(Tok::Dot); break;
          case '@': one(Tok::At); break;
          case '#': one(Tok::Hash); break;
          case '+': one(Tok::Plus); break;
          case '^': one(Tok::Caret); break;
          case '&': one(Tok::Amp); break;
          case '|': one(Tok::Pipe); break;
          case '~': one(Tok::Tilde); break;
          case '/': one(Tok::Slash); break;
          case '*': one(Tok::Star); break;
          case ':':
            if (peek(1) == '=')
                two(Tok::Assign, ":=");
            else
                one(Tok::Colon);
            break;
          case '=':
            if (peek(1) == '=')
                two(Tok::EqEq, "==");
            else
                one(Tok::Eq);
            break;
          case '!':
            if (peek(1) == '=')
                two(Tok::NotEq, "!=");
            else
                one(Tok::Bang);
            break;
          case '<':
            if (peek(1) == '=')
                two(Tok::Le, "<=");
            else if (peek(1) == '<')
                two(Tok::Shl, "<<");
            else
                one(Tok::Lt);
            break;
          case '>':
            if (peek(1) == '>')
                two(Tok::Arrow, ">>");
            else if (peek(1) == '=')
                two(Tok::Ge, ">=");
            else
                one(Tok::Gt);
            break;
          case '-':
            if (peek(1) == '-')
                two(Tok::DashDash, "--");
            else
                one(Tok::Minus);
            break;
          default:
            _diags.error(strfmt("unexpected character '%c'", c), t.loc);
            advance();
            continue;
        }
        out.push_back(t);
    }
    Token eof;
    eof.kind = Tok::Eof;
    eof.loc = here();
    out.push_back(eof);
    return out;
}

} // namespace anvil
