#include "lang/parser.h"

#include <stdexcept>

#include "lang/lexer.h"
#include "support/strings.h"

namespace anvil {

namespace {

/** Internal exception used to abort parsing on a syntax error. */
struct ParseError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

} // namespace

Parser::Parser(std::vector<Token> tokens, DiagEngine &diags)
    : _toks(std::move(tokens)), _diags(diags)
{
}

const Token &
Parser::peek(int off) const
{
    size_t p = _pos + off;
    if (p >= _toks.size())
        p = _toks.size() - 1;
    return _toks[p];
}

const Token &
Parser::advance()
{
    const Token &t = _toks[_pos];
    if (_pos + 1 < _toks.size())
        _pos++;
    return t;
}

bool
Parser::check(Tok t) const
{
    return peek().kind == t;
}

bool
Parser::match(Tok t)
{
    if (check(t)) {
        advance();
        return true;
    }
    return false;
}

const Token &
Parser::expect(Tok t, const char *what)
{
    if (!check(t)) {
        fail(strfmt("expected %s (%s), found %s", tokName(t), what,
                    tokName(peek().kind)));
    }
    return advance();
}

void
Parser::fail(const std::string &msg)
{
    _diags.error("syntax error: " + msg, peek().loc);
    throw ParseError(msg);
}

Program
Parser::parseProgram()
{
    Program prog;
    while (!check(Tok::Eof)) {
        try {
            if (check(Tok::KwChan)) {
                parseChannelDef(prog);
            } else if (check(Tok::KwProc)) {
                parseProcDef(prog);
            } else if (check(Tok::KwType)) {
                parseTypeDef(prog);
            } else {
                fail("expected 'chan', 'proc' or 'type' at top level");
            }
        } catch (const ParseError &) {
            // Error recovery: skip to the next top-level keyword.
            while (!check(Tok::Eof) && !check(Tok::KwChan) &&
                   !check(Tok::KwProc) && !check(Tok::KwType)) {
                advance();
            }
        }
    }
    return prog;
}

void
Parser::parseTypeDef(Program &prog)
{
    expect(Tok::KwType, "type definition");
    std::string name = expect(Tok::Ident, "type name").text;
    expect(Tok::Eq, "type definition");
    std::string dtype;
    int width = 1;
    parseDataType(dtype, width);
    match(Tok::Semi);
    prog.type_aliases[name] = prog.typeWidth(dtype, width);
}

void
Parser::parseDataType(std::string &dtype, int &width)
{
    if (match(Tok::KwLogic)) {
        dtype = "logic";
        width = 1;
        if (match(Tok::LBracket)) {
            width = static_cast<int>(
                expect(Tok::Number, "bit width").value);
            expect(Tok::RBracket, "bit width");
        }
    } else {
        dtype = expect(Tok::Ident, "data type").text;
        width = 1;
    }
}

Duration
Parser::parseDuration()
{
    if (match(Tok::Hash)) {
        int n = static_cast<int>(expect(Tok::Number, "duration").value);
        return Duration::fixed(n);
    }
    std::string m = expect(Tok::Ident, "duration message").text;
    int plus = 0;
    if (match(Tok::Plus))
        plus = static_cast<int>(
            expect(Tok::Number, "duration offset").value);
    return Duration::message(m, plus);
}

SyncMode
Parser::parseSyncMode()
{
    SyncMode s;
    if (match(Tok::KwDyn)) {
        s.kind = SyncMode::Kind::Dynamic;
        // Bounded-dynamic: `@dyn#N` keeps the valid/ack handshake but
        // additionally promises this side is ready (syncs) within N
        // cycles of the peer's offer.  The bound changes no generated
        // hardware; it is the `@#N`-style annotation the formal
        // subsystem compiles into `ack within N` contracts.
        if (match(Tok::Hash))
            s.cycles = static_cast<int>(
                expect(Tok::Number, "sync readiness bound").value);
        return s;
    }
    expect(Tok::Hash, "sync mode");
    if (check(Tok::Number)) {
        s.kind = SyncMode::Kind::Static;
        s.cycles = static_cast<int>(advance().value);
    } else {
        s.kind = SyncMode::Kind::Dependent;
        s.dep_msg = expect(Tok::Ident, "sync dependency").text;
        if (match(Tok::Plus))
            s.cycles = static_cast<int>(
                expect(Tok::Number, "sync offset").value);
    }
    return s;
}

MessageDef
Parser::parseMessageDef()
{
    MessageDef m;
    m.loc = peek().loc;
    if (match(Tok::KwLeft))
        m.dir = MsgDir::Left;
    else if (match(Tok::KwRight))
        m.dir = MsgDir::Right;
    else
        fail("expected 'left' or 'right' message direction");
    m.name = expect(Tok::Ident, "message name").text;
    expect(Tok::Colon, "message contract");
    expect(Tok::LParen, "message contract");
    parseDataType(m.dtype, m.width_expr);
    expect(Tok::At, "message lifetime");
    m.lifetime = parseDuration();
    expect(Tok::RParen, "message contract");
    if (match(Tok::At)) {
        m.left_sync = parseSyncMode();
        expect(Tok::Minus, "sync mode pair");
        expect(Tok::At, "sync mode pair");
        m.right_sync = parseSyncMode();
    }
    return m;
}

void
Parser::parseChannelDef(Program &prog)
{
    expect(Tok::KwChan, "channel definition");
    ChannelDef c;
    c.loc = peek().loc;
    c.name = expect(Tok::Ident, "channel name").text;
    expect(Tok::LBrace, "channel body");
    if (!check(Tok::RBrace)) {
        c.messages.push_back(parseMessageDef());
        while (match(Tok::Comma)) {
            if (check(Tok::RBrace))
                break;  // trailing comma
            c.messages.push_back(parseMessageDef());
        }
    }
    expect(Tok::RBrace, "channel body");
    if (prog.channels.count(c.name))
        _diags.error("duplicate channel definition: " + c.name, c.loc);
    prog.channels[c.name] = std::move(c);
}

void
Parser::parseProcDef(Program &prog)
{
    expect(Tok::KwProc, "process definition");
    ProcDef p;
    p.loc = peek().loc;
    p.name = expect(Tok::Ident, "process name").text;
    expect(Tok::LParen, "process parameters");
    if (!check(Tok::RParen)) {
        do {
            EndpointParam ep;
            ep.loc = peek().loc;
            ep.name = expect(Tok::Ident, "endpoint name").text;
            expect(Tok::Colon, "endpoint parameter");
            if (match(Tok::KwLeft))
                ep.side = EndpointSide::Left;
            else if (match(Tok::KwRight))
                ep.side = EndpointSide::Right;
            else
                fail("expected 'left' or 'right' endpoint side");
            ep.chan_type = expect(Tok::Ident, "channel type").text;
            p.params.push_back(std::move(ep));
        } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "process parameters");
    expect(Tok::LBrace, "process body");

    while (!check(Tok::RBrace) && !check(Tok::Eof)) {
        if (match(Tok::KwReg)) {
            RegDef r;
            r.loc = peek().loc;
            r.name = expect(Tok::Ident, "register name").text;
            expect(Tok::Colon, "register type");
            parseDataType(r.dtype, r.width);
            expect(Tok::Semi, "register definition");
            p.regs.push_back(std::move(r));
        } else if (match(Tok::KwChan)) {
            ChanInst ci;
            ci.loc = peek().loc;
            ci.left_ep = expect(Tok::Ident, "left endpoint").text;
            expect(Tok::DashDash, "channel instantiation");
            ci.right_ep = expect(Tok::Ident, "right endpoint").text;
            expect(Tok::Colon, "channel instantiation");
            ci.chan_type = expect(Tok::Ident, "channel type").text;
            expect(Tok::Semi, "channel instantiation");
            p.chans.push_back(std::move(ci));
        } else if (match(Tok::KwSpawn)) {
            SpawnStmt s;
            s.loc = peek().loc;
            s.proc_name = expect(Tok::Ident, "process name").text;
            expect(Tok::LParen, "spawn arguments");
            if (!check(Tok::RParen)) {
                do {
                    s.args.push_back(
                        expect(Tok::Ident, "endpoint argument").text);
                } while (match(Tok::Comma));
            }
            expect(Tok::RParen, "spawn arguments");
            expect(Tok::Semi, "spawn statement");
            p.spawns.push_back(std::move(s));
        } else if (check(Tok::KwLoop) || check(Tok::KwRecursive)) {
            ThreadDef t;
            t.loc = peek().loc;
            t.recursive = check(Tok::KwRecursive);
            advance();
            expect(Tok::LBrace, "thread body");
            t.body = parseTerm();
            expect(Tok::RBrace, "thread body");
            p.threads.push_back(std::move(t));
        } else {
            fail("expected 'reg', 'chan', 'spawn', 'loop' or "
                 "'recursive' in process body");
        }
    }
    expect(Tok::RBrace, "process body");
    if (prog.procs.count(p.name))
        _diags.error("duplicate process definition: " + p.name, p.loc);
    prog.procs[p.name] = std::move(p);
}

// ---------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------

TermPtr
Parser::parseTerm()
{
    TermPtr lhs = parseJoin();
    while (check(Tok::Arrow)) {
        SrcLoc loc = advance().loc;
        TermPtr rhs = parseJoin();
        auto w = Term::make(TermKind::Wait, loc);
        w->kids.push_back(std::move(lhs));
        w->kids.push_back(std::move(rhs));
        lhs = std::move(w);
    }
    return lhs;
}

TermPtr
Parser::parseJoin()
{
    TermPtr lhs = parseStmt();
    while (check(Tok::Semi)) {
        SrcLoc loc = advance().loc;
        // Allow a trailing ';' before a closing brace.
        if (check(Tok::RBrace) || check(Tok::Eof))
            break;
        TermPtr rhs = parseStmt();
        auto j = Term::make(TermKind::Join, loc);
        j->kids.push_back(std::move(lhs));
        j->kids.push_back(std::move(rhs));
        lhs = std::move(j);
    }
    return lhs;
}

TermPtr
Parser::parseStmt()
{
    SrcLoc loc = peek().loc;
    if (match(Tok::KwLet)) {
        auto t = Term::make(TermKind::Let, loc);
        t->name = expect(Tok::Ident, "binding name").text;
        expect(Tok::Eq, "let binding");
        t->kids.push_back(parseStmt());
        return t;
    }
    if (match(Tok::KwSet)) {
        auto t = Term::make(TermKind::Set, loc);
        t->name = expect(Tok::Ident, "register name").text;
        expect(Tok::Assign, "register assignment");
        t->kids.push_back(parseStmt());
        return t;
    }
    if (match(Tok::KwSend)) {
        auto t = Term::make(TermKind::Send, loc);
        t->endpoint = expect(Tok::Ident, "endpoint").text;
        expect(Tok::Dot, "message reference");
        t->msg = expect(Tok::Ident, "message name").text;
        expect(Tok::LParen, "send payload");
        t->kids.push_back(parseTerm());
        expect(Tok::RParen, "send payload");
        return t;
    }
    if (match(Tok::KwRecurse))
        return Term::make(TermKind::Recurse, loc);
    if (match(Tok::KwDprint)) {
        auto t = Term::make(TermKind::DPrint, loc);
        t->text = expect(Tok::String, "dprint text").text;
        return t;
    }
    // Bare register assignment without the 'set' keyword:  r := expr
    if (check(Tok::Ident) && peek(1).kind == Tok::Assign) {
        auto t = Term::make(TermKind::Set, loc);
        t->name = advance().text;
        advance();  // ':='
        t->kids.push_back(parseStmt());
        return t;
    }
    return parseExpr();
}

TermPtr
Parser::parseExpr()
{
    return parseCompare();
}

namespace {

TermPtr
binop(const std::string &op, SrcLoc loc, TermPtr a, TermPtr b)
{
    auto t = Term::make(TermKind::Binop, loc);
    t->op = op;
    t->kids.push_back(std::move(a));
    t->kids.push_back(std::move(b));
    return t;
}

} // namespace

TermPtr
Parser::parseCompare()
{
    TermPtr lhs = parseBitOr();
    while (check(Tok::EqEq) || check(Tok::NotEq) || check(Tok::Lt) ||
           check(Tok::Gt) || check(Tok::Le) || check(Tok::Ge)) {
        Token t = advance();
        lhs = binop(t.text, t.loc, std::move(lhs), parseBitOr());
    }
    return lhs;
}

TermPtr
Parser::parseBitOr()
{
    TermPtr lhs = parseBitXor();
    while (check(Tok::Pipe)) {
        Token t = advance();
        lhs = binop("|", t.loc, std::move(lhs), parseBitXor());
    }
    return lhs;
}

TermPtr
Parser::parseBitXor()
{
    TermPtr lhs = parseBitAnd();
    while (check(Tok::Caret)) {
        Token t = advance();
        lhs = binop("^", t.loc, std::move(lhs), parseBitAnd());
    }
    return lhs;
}

TermPtr
Parser::parseBitAnd()
{
    TermPtr lhs = parseShift();
    while (check(Tok::Amp)) {
        Token t = advance();
        lhs = binop("&", t.loc, std::move(lhs), parseShift());
    }
    return lhs;
}

TermPtr
Parser::parseShift()
{
    TermPtr lhs = parseAddSub();
    while (check(Tok::Shl)) {
        Token t = advance();
        lhs = binop("<<", t.loc, std::move(lhs), parseAddSub());
    }
    return lhs;
}

TermPtr
Parser::parseAddSub()
{
    TermPtr lhs = parseMul();
    while (check(Tok::Plus) || check(Tok::Minus)) {
        Token t = advance();
        lhs = binop(t.text, t.loc, std::move(lhs), parseMul());
    }
    return lhs;
}

TermPtr
Parser::parseMul()
{
    TermPtr lhs = parseUnary();
    while (check(Tok::Star)) {
        Token t = advance();
        lhs = binop("*", t.loc, std::move(lhs), parseUnary());
    }
    return lhs;
}

TermPtr
Parser::parseUnary()
{
    SrcLoc loc = peek().loc;
    if (match(Tok::Tilde)) {
        auto t = Term::make(TermKind::Unop, loc);
        t->op = "~";
        t->kids.push_back(parseUnary());
        return t;
    }
    if (match(Tok::Bang)) {
        auto t = Term::make(TermKind::Unop, loc);
        t->op = "!";
        t->kids.push_back(parseUnary());
        return t;
    }
    if (match(Tok::Star)) {
        auto t = Term::make(TermKind::RegRead, loc);
        t->name = expect(Tok::Ident, "register name").text;
        return parsePostfixOn(std::move(t));
    }
    return parsePostfix();
}

TermPtr
Parser::parsePostfix()
{
    return parsePostfixOn(parsePrimary());
}

/** Apply postfix slices to an already-parsed primary. */
TermPtr
Parser::parsePostfixOn(TermPtr base)
{
    while (check(Tok::LBracket)) {
        SrcLoc loc = advance().loc;
        int hi = static_cast<int>(expect(Tok::Number, "slice bound").value);
        int lo = hi;
        if (match(Tok::Colon))
            lo = static_cast<int>(
                expect(Tok::Number, "slice bound").value);
        expect(Tok::RBracket, "slice");
        auto s = Term::make(TermKind::Slice, loc);
        s->hi = hi;
        s->lo = lo;
        s->kids.push_back(std::move(base));
        base = std::move(s);
    }
    return base;
}

TermPtr
Parser::parsePrimary()
{
    SrcLoc loc = peek().loc;
    if (check(Tok::Number) || check(Tok::SizedNumber)) {
        Token t = advance();
        auto lit = Term::make(TermKind::Literal, loc);
        lit->value = t.value;
        lit->width = t.width;
        return lit;
    }
    if (match(Tok::KwRecv)) {
        auto t = Term::make(TermKind::Recv, loc);
        t->endpoint = expect(Tok::Ident, "endpoint").text;
        expect(Tok::Dot, "message reference");
        t->msg = expect(Tok::Ident, "message name").text;
        // Tolerate the `recv ep.m()` spelling used in some figures.
        if (match(Tok::LParen))
            expect(Tok::RParen, "recv");
        return t;
    }
    if (match(Tok::KwReady)) {
        auto t = Term::make(TermKind::Ready, loc);
        expect(Tok::LParen, "ready");
        t->endpoint = expect(Tok::Ident, "endpoint").text;
        expect(Tok::Dot, "message reference");
        t->msg = expect(Tok::Ident, "message name").text;
        expect(Tok::RParen, "ready");
        return t;
    }
    if (match(Tok::KwCycle)) {
        auto t = Term::make(TermKind::Cycle, loc);
        t->cycles = static_cast<int>(
            expect(Tok::Number, "cycle count").value);
        return t;
    }
    if (match(Tok::KwIf)) {
        auto t = Term::make(TermKind::If, loc);
        t->kids.push_back(parseExpr());
        expect(Tok::LBrace, "if body");
        t->kids.push_back(parseTerm());
        expect(Tok::RBrace, "if body");
        if (match(Tok::KwElse)) {
            expect(Tok::LBrace, "else body");
            t->kids.push_back(parseTerm());
            expect(Tok::RBrace, "else body");
        }
        return t;
    }
    if (match(Tok::LBrace)) {
        TermPtr inner = parseTerm();
        expect(Tok::RBrace, "block");
        return inner;
    }
    if (match(Tok::LParen)) {
        TermPtr inner = parseTerm();
        expect(Tok::RParen, "parenthesized term");
        return inner;
    }
    if (check(Tok::Ident)) {
        // Intrinsic call: ident '(' term (',' term)* ')'.
        if (peek(1).kind == Tok::LParen) {
            auto t = Term::make(TermKind::Call, loc);
            t->name = advance().text;
            advance();  // '('
            t->kids.push_back(parseTerm());
            while (match(Tok::Comma))
                t->kids.push_back(parseTerm());
            expect(Tok::RParen, "intrinsic call");
            return t;
        }
        auto t = Term::make(TermKind::Ident, loc);
        t->name = advance().text;
        return t;
    }
    fail(strfmt("expected a term, found %s", tokName(peek().kind)));
}

Program
parseAnvil(const std::string &source, DiagEngine &diags)
{
    diags.setSource(source, "input.anvil");
    Lexer lexer(source, diags);
    Parser parser(lexer.lex(), diags);
    return parser.parseProgram();
}

} // namespace anvil
