/**
 * @file
 * Recursive-descent parser for the Anvil HDL.
 */

#ifndef ANVIL_LANG_PARSER_H
#define ANVIL_LANG_PARSER_H

#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/token.h"
#include "support/diag.h"

namespace anvil {

/**
 * Parses a token stream into a Program.
 *
 * Grammar sketch (see DESIGN.md for the full description):
 *
 *   program   := (chan_def | proc_def | type_def)*
 *   chan_def  := 'chan' ident '{' msg (',' msg)* '}'
 *   msg       := ('left'|'right') ident ':' '(' dtype '@' dur ')'
 *                ('@' sync '-' '@' sync)?
 *   proc_def  := 'proc' ident '(' params ')' '{' item* '}'
 *   item      := reg | chan_inst | spawn | ('loop'|'recursive') block
 *   term      := join ('>>' join)*            -- wait operator
 *   join      := stmt (';' stmt)*             -- parallel composition
 *   stmt      := 'let' x '=' stmt | 'set'? r ':=' expr | 'send' ...
 *              | 'recurse' | 'dprint' str | expr
 */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagEngine &diags);

    /** Parse a whole program; diagnostics report any errors. */
    Program parseProgram();

  private:
    const Token &peek(int off = 0) const;
    const Token &advance();
    bool check(Tok t) const;
    bool match(Tok t);
    const Token &expect(Tok t, const char *what);
    [[noreturn]] void fail(const std::string &msg);

    void parseChannelDef(Program &prog);
    void parseProcDef(Program &prog);
    void parseTypeDef(Program &prog);
    MessageDef parseMessageDef();
    Duration parseDuration();
    SyncMode parseSyncMode();
    void parseDataType(std::string &dtype, int &width);

    TermPtr parseTerm();       // '>>' level
    TermPtr parseJoin();       // ';' level
    TermPtr parseStmt();       // let / set / send / dprint / expr
    TermPtr parseExpr();       // binary expression ladder
    TermPtr parseCompare();
    TermPtr parseBitOr();
    TermPtr parseBitXor();
    TermPtr parseBitAnd();
    TermPtr parseShift();
    TermPtr parseAddSub();
    TermPtr parseMul();
    TermPtr parseUnary();
    TermPtr parsePostfix();
    TermPtr parsePostfixOn(TermPtr base);
    TermPtr parsePrimary();

    std::vector<Token> _toks;
    DiagEngine &_diags;
    size_t _pos = 0;
};

/** Convenience: lex + parse a source string. */
Program parseAnvil(const std::string &source, DiagEngine &diags);

} // namespace anvil

#endif // ANVIL_LANG_PARSER_H
