/**
 * @file
 * Token definitions for the Anvil lexer.
 */

#ifndef ANVIL_LANG_TOKEN_H
#define ANVIL_LANG_TOKEN_H

#include <string>

#include "support/diag.h"

namespace anvil {

/** All token kinds produced by the lexer. */
enum class Tok
{
    // Punctuation and operators.
    LBrace, RBrace, LParen, RParen, LBracket, RBracket,
    Comma, Semi, Colon, Dot, At, Hash,
    Arrow,          // >>
    DashDash,       // --
    Assign,         // :=
    Eq,             // =
    EqEq, NotEq, Lt, Gt, Le, Ge,
    Plus, Minus, Star, Slash, Caret, Amp, Pipe, Tilde, Bang,
    Shl,            // <<
    // Literals and identifiers.
    Ident, Number, SizedNumber, String,
    // Keywords.
    KwChan, KwProc, KwLoop, KwRecursive, KwLet, KwSet, KwSend, KwRecv,
    KwCycle, KwIf, KwElse, KwReg, KwSpawn, KwLeft, KwRight, KwLogic,
    KwDyn, KwReady, KwRecurse, KwDprint, KwType,
    Eof,
};

/** A single lexed token with its source text and location. */
struct Token
{
    Tok kind = Tok::Eof;
    std::string text;
    SrcLoc loc;

    /** For Number / SizedNumber: decoded value and declared width. */
    uint64_t value = 0;
    int width = 0;      // 0 means unsized
};

/** Human-readable token-kind name (for parse error messages). */
const char *tokName(Tok t);

} // namespace anvil

#endif // ANVIL_LANG_TOKEN_H
