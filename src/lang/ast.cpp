#include "lang/ast.h"

#include "support/strings.h"

namespace anvil {

Duration
Duration::fixed(int n)
{
    Duration d;
    d.kind = Kind::Cycles;
    d.cycles = n;
    return d;
}

Duration
Duration::message(const std::string &m, int plus)
{
    Duration d;
    d.kind = Kind::Message;
    d.msg = m;
    d.cycles = plus;
    return d;
}

std::string
Duration::str() const
{
    if (kind == Kind::Cycles)
        return strfmt("#%d", cycles);
    if (cycles != 0)
        return strfmt("%s+%d", msg.c_str(), cycles);
    return msg;
}

std::string
SyncMode::str() const
{
    switch (kind) {
      case Kind::Dynamic:
        return cycles > 0 ? strfmt("dyn#%d", cycles) : "dyn";
      case Kind::Static: return strfmt("#%d", cycles);
      case Kind::Dependent: return strfmt("#%s+%d", dep_msg.c_str(),
                                          cycles);
    }
    return "?";
}

const MessageDef *
ChannelDef::findMessage(const std::string &m) const
{
    for (const auto &msg : messages)
        if (msg.name == m)
            return &msg;
    return nullptr;
}

TermPtr
Term::make(TermKind k, SrcLoc loc)
{
    auto t = std::make_unique<Term>();
    t->kind = k;
    t->loc = loc;
    return t;
}

const RegDef *
ProcDef::findReg(const std::string &r) const
{
    for (const auto &reg : regs)
        if (reg.name == r)
            return &reg;
    return nullptr;
}

const ChannelDef *
Program::findChannel(const std::string &c) const
{
    auto it = channels.find(c);
    return it != channels.end() ? &it->second : nullptr;
}

const ProcDef *
Program::findProc(const std::string &p) const
{
    auto it = procs.find(p);
    return it != procs.end() ? &it->second : nullptr;
}

int
Program::typeWidth(const std::string &dtype, int width_expr) const
{
    if (dtype == "logic")
        return width_expr;
    auto it = type_aliases.find(dtype);
    if (it != type_aliases.end())
        return it->second;
    return width_expr;
}

} // namespace anvil
