/**
 * @file
 * Abstract syntax tree for the Anvil HDL (paper §4 and Fig. 7).
 *
 * The AST covers channels (message contracts with lifetimes and sync
 * modes), processes (endpoints, registers, channel instantiations,
 * spawns, threads), and the full term language (wait/join operators,
 * message send/receive, register reads and assignments, cycle delays,
 * conditionals, and combinational expressions).
 */

#ifndef ANVIL_LANG_AST_H
#define ANVIL_LANG_AST_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/diag.h"

namespace anvil {

// ---------------------------------------------------------------------
// Channel definitions
// ---------------------------------------------------------------------

/** Direction a message travels: toward the left or right endpoint. */
enum class MsgDir { Left, Right };

/**
 * A duration (paper §5.1): a fixed number of cycles (`#N`), a dynamic
 * duration naming a message on the same channel ("until the next time
 * that message is exchanged"), or a message plus a fixed offset
 * (`msg+N`, as in the paper's `[res, res->res+1)` cache contract).
 */
struct Duration
{
    enum class Kind { Cycles, Message };

    Kind kind = Kind::Cycles;
    int cycles = 1;    // Cycles: the duration; Message: extra offset
    std::string msg;   // for Kind::Message

    static Duration fixed(int n);
    static Duration message(const std::string &m, int plus = 0);
    std::string str() const;
};

/**
 * A synchronization mode (paper §4.1): dynamic (valid/ack handshake),
 * static (`@#N`: ready at most N cycles after the previous sync), or
 * dependent (`@#msg+N`: exactly N cycles after message `msg`).
 *
 * A dynamic mode may carry a readiness bound (`@dyn#N`): the
 * handshake hardware is unchanged, but this side promises to complete
 * the sync within N cycles of the peer's offer.  The bound is the
 * compile-time source of the formal subsystem's `ack within N`
 * contracts (src/formal/contracts.h).
 */
struct SyncMode
{
    enum class Kind { Dynamic, Static, Dependent };

    Kind kind = Kind::Dynamic;
    int cycles = 0;       // Static/Dependent: timing; Dynamic: bound
    std::string dep_msg;  // for Kind::Dependent

    std::string str() const;
};

/** One message in a channel definition, with its contract. */
struct MessageDef
{
    std::string name;
    MsgDir dir = MsgDir::Right;
    std::string dtype;     // "logic" or a type alias name
    int width_expr = 1;    // for logic[N]
    Duration lifetime;     // value expires after this duration
    SyncMode left_sync;
    SyncMode right_sync;
    SrcLoc loc;
};

/** A channel type definition (template for channels). */
struct ChannelDef
{
    std::string name;
    std::vector<MessageDef> messages;
    SrcLoc loc;

    const MessageDef *findMessage(const std::string &m) const;
};

// ---------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------

struct Term;
using TermPtr = std::unique_ptr<Term>;

/** Every term form in the concrete language. */
enum class TermKind
{
    Literal,    // 25, 8'd255
    Ident,      // let-bound name
    RegRead,    // *r
    Let,        // let x = t
    Set,        // set r := t   /  r := t
    Send,       // send ep.m (t)
    Recv,       // recv ep.m
    Ready,      // ready(ep.m)
    Cycle,      // cycle N
    If,         // if c { t } else { t }
    Binop,      // t op t
    Unop,       // ~t, !t
    Wait,       // t >> t
    Join,       // t ; t
    Recurse,    // recurse (inside recursive threads)
    DPrint,     // dprint "..."
    Slice,      // t[hi:lo]
    Call,       // intrinsic call, e.g. sbox(t)
};

/**
 * A term node.  A single struct (rather than a class hierarchy) keeps
 * the elaborator and checker compact; which fields are meaningful
 * depends on `kind`.
 */
struct Term
{
    TermKind kind;
    SrcLoc loc;

    // Literal
    uint64_t value = 0;
    int width = 0;            // 0 = unsized literal

    // Ident / RegRead / Let / Set
    std::string name;

    // Send / Recv / Ready
    std::string endpoint;
    std::string msg;

    // Binop / Unop
    std::string op;

    // Cycle
    int cycles = 0;

    // Slice
    int hi = 0, lo = 0;

    // DPrint
    std::string text;

    // Children: Let/Set/Send(1: rhs), If(3: cond,then,else or 2),
    // Binop(2), Unop(1), Wait(2), Join(2), Slice(1).
    std::vector<TermPtr> kids;

    static TermPtr make(TermKind k, SrcLoc loc);
};

// ---------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------

/** Which endpoint of a channel a parameter or instantiation binds. */
enum class EndpointSide { Left, Right };

/** A process parameter: an endpoint to be supplied at spawn time. */
struct EndpointParam
{
    std::string name;
    EndpointSide side = EndpointSide::Left;
    std::string chan_type;
    SrcLoc loc;
};

/** A register definition inside a process. */
struct RegDef
{
    std::string name;
    std::string dtype;
    int width = 1;
    SrcLoc loc;
};

/** A channel instantiation: `chan l -- r : chan_type;`. */
struct ChanInst
{
    std::string left_ep;
    std::string right_ep;
    std::string chan_type;
    SrcLoc loc;
};

/** A child process instantiation: `spawn p(ep, ...);`. */
struct SpawnStmt
{
    std::string proc_name;
    std::vector<std::string> args;
    SrcLoc loc;
};

/** A thread: `loop { t }` or `recursive { t }`. */
struct ThreadDef
{
    bool recursive = false;
    TermPtr body;
    SrcLoc loc;
};

/** A process definition. */
struct ProcDef
{
    std::string name;
    std::vector<EndpointParam> params;
    std::vector<RegDef> regs;
    std::vector<ChanInst> chans;
    std::vector<SpawnStmt> spawns;
    std::vector<ThreadDef> threads;
    SrcLoc loc;

    const RegDef *findReg(const std::string &r) const;
};

/** A whole compilation unit. */
struct Program
{
    std::map<std::string, ChannelDef> channels;
    std::map<std::string, ProcDef> procs;
    std::map<std::string, int> type_aliases;  // name -> width

    const ChannelDef *findChannel(const std::string &c) const;
    const ProcDef *findProc(const std::string &p) const;

    /** Resolve a data type name to a bit width (logic = 1). */
    int typeWidth(const std::string &dtype, int width_expr) const;
};

} // namespace anvil

#endif // ANVIL_LANG_AST_H
