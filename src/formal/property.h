/**
 * @file
 * Property compilation: lower per-channel timing contracts into
 * safety automata woven into the RTL module itself, so the
 * obligations become ordinary `Assertion`s over the *compiled*
 * netlist — checked through the interned-NetId fast lane by both the
 * legacy BMC and the k-induction prover, with no per-cycle expression
 * walking.
 *
 * Each clause of a ContractSpec becomes a small monitor block on a
 * clone of the top module (`__fml_<ch>_*` registers and wires; the
 * original module is never mutated):
 *
 *  - a shared 1-bit `pend` register tracks "offer outstanding":
 *    pend' = valid & ~ack;
 *  - `hold`:  bad when pend & ~valid (the offer was retracted);
 *  - `stable`: a payload-wide shadow register captures the offered
 *    data (shadow' = pend ? shadow : data); bad when
 *    pend & (data != shadow);
 *  - `ack within N`: a saturating counter of completed pending
 *    cycles (cnt' = valid & ~ack ? sat(cnt + 1) : 0); bad when
 *    valid & ~ack & cnt >= N-1 — the exact cycle trace::
 *    ChannelChecker first reports the same violation.
 *
 * The bad conditions are named wires, so a violation shows up in VCD
 * dumps of the instrumented design and the prover reads them as
 * plain interned nets.
 */

#ifndef ANVIL_FORMAL_PROPERTY_H
#define ANVIL_FORMAL_PROPERTY_H

#include <string>
#include <vector>

#include "rtl/rtl.h"
#include "trace/contracts.h"
#include "verif/bmc.h"

namespace anvil {
namespace formal {

/** One lowered obligation: a clause of one channel's contract. */
struct CompiledProperty
{
    std::string channel;
    std::string rule;       // "ack-within", "stable", "hold"
    std::string bad_wire;   // 1-bit wire: high on violation
    std::string data_wire;  // stable only: the payload signal
    verif::Assertion assertion;   // enable 1, expr = ~bad
};

/** A module clone carrying the compiled safety automata. */
struct InstrumentedDesign
{
    rtl::ModulePtr module;
    std::vector<CompiledProperty> props;

    /** All assertions, for the legacy BMC comparison path. */
    std::vector<verif::Assertion> assertions() const;
};

/**
 * Compile the clauses of each spec onto a clone of `top`.  Channels
 * whose `<ch>_valid`/`<ch>_ack` signals the module does not expose
 * are skipped; specs with no clauses compile to nothing.  The clone
 * shares expression DAGs and child instances with the original
 * (both are immutable).
 */
InstrumentedDesign compileProperties(
    const rtl::Module &top,
    const std::vector<trace::ContractSpec> &specs);

} // namespace formal
} // namespace anvil

#endif // ANVIL_FORMAL_PROPERTY_H
