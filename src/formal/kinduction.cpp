#include "formal/kinduction.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "rtl/vcd.h"
#include "support/hash.h"
#include "support/strings.h"

namespace anvil {
namespace formal {

namespace {

using StateSet =
    std::unordered_set<std::vector<uint64_t>, PackedWordsHash>;

/** The cone of influence of one property's bad net. */
struct Coi
{
    std::vector<int> regs;          // indices into netlist regs()
    std::vector<int> reg_widths;
    std::vector<std::string> inputs;        // enumeration order
    std::vector<int> input_bits;            // bits enumerated each
    int state_bits = 0;
    std::vector<std::string> wide_regs;     // over-budget culprits
};

/** Collect the Reg/Input terminals feeding `root` (operand walk). */
void
collectSources(const rtl::Netlist &nl, rtl::NetId root,
               std::vector<uint8_t> &visited,
               std::vector<rtl::NetId> &reg_nets,
               std::vector<rtl::NetId> &input_nets)
{
    std::vector<rtl::NetId> stack{root};
    while (!stack.empty()) {
        rtl::NetId id = stack.back();
        stack.pop_back();
        if (id == rtl::kNoNet || visited[static_cast<size_t>(id)])
            continue;
        visited[static_cast<size_t>(id)] = 1;
        const rtl::Net &n = nl.net(id);
        switch (n.kind) {
          case rtl::Net::Kind::Reg:
            reg_nets.push_back(id);
            continue;
          case rtl::Net::Kind::Input:
            input_nets.push_back(id);
            continue;
          case rtl::Net::Kind::Const:
          case rtl::Net::Kind::BadRef:
            continue;
          default:
            break;
        }
        stack.push_back(n.a);
        stack.push_back(n.b);
        stack.push_back(n.c);
        for (rtl::NetId c : n.cargs)
            stack.push_back(c);
    }
}

/**
 * Transitive cone of `bad`: its sources, plus (to a fixpoint) the
 * sources of every cone register's update enable and value.
 */
Coi
computeCoi(const rtl::Netlist &nl, rtl::NetId bad,
           const ProveOptions &opts)
{
    const auto &regs = nl.regs();
    std::vector<int32_t> reg_index_of(nl.nets().size(), -1);
    for (size_t i = 0; i < regs.size(); i++)
        reg_index_of[static_cast<size_t>(regs[i])] =
            static_cast<int32_t>(i);

    std::vector<std::vector<const rtl::NetUpdate *>> updates_of(
        regs.size());
    for (const auto &u : nl.updates())
        if (u.reg_index >= 0)
            updates_of[static_cast<size_t>(u.reg_index)].push_back(&u);

    std::vector<uint8_t> visited(nl.nets().size(), 0);
    std::vector<uint8_t> reg_in(regs.size(), 0);
    std::vector<rtl::NetId> reg_nets, input_nets, frontier;

    collectSources(nl, bad, visited, reg_nets, input_nets);
    frontier = reg_nets;
    while (!frontier.empty()) {
        rtl::NetId rn = frontier.back();
        frontier.pop_back();
        int32_t ri = reg_index_of[static_cast<size_t>(rn)];
        if (ri < 0 || reg_in[static_cast<size_t>(ri)])
            continue;
        reg_in[static_cast<size_t>(ri)] = 1;
        std::vector<rtl::NetId> found;
        for (const rtl::NetUpdate *u :
             updates_of[static_cast<size_t>(ri)]) {
            collectSources(nl, u->enable, visited, found, input_nets);
            collectSources(nl, u->value, visited, found, input_nets);
        }
        for (rtl::NetId f : found)
            frontier.push_back(f);
    }

    // Input names, in the netlist's (sorted) signal order for
    // deterministic enumeration.
    std::vector<uint8_t> input_in(nl.nets().size(), 0);
    for (rtl::NetId in : input_nets)
        input_in[static_cast<size_t>(in)] = 1;

    Coi coi;
    for (size_t i = 0; i < regs.size(); i++) {
        if (!reg_in[i])
            continue;
        int w = nl.net(regs[i]).width;
        coi.regs.push_back(static_cast<int>(i));
        coi.reg_widths.push_back(w);
        coi.state_bits += w;
        if (w > opts.max_state_bits)
            coi.wide_regs.push_back(nl.nameOf(regs[i]));
    }
    int total_bits = 0;
    for (const auto &[name, sig] : nl.signals()) {
        if (sig.kind != rtl::NetSignal::Kind::Input ||
            !input_in[static_cast<size_t>(sig.net)])
            continue;
        int bits = std::min(sig.width, opts.input_bits_limit);
        if (total_bits + bits > opts.max_input_bits)
            bits = std::max(0, opts.max_input_bits - total_bits);
        total_bits += bits;
        coi.inputs.push_back(name);
        coi.input_bits.push_back(bits);
    }
    return coi;
}

/** Names of the inputs feeding `root` combinationally. */
std::vector<std::string>
inputSourcesOf(const rtl::Netlist &nl, rtl::NetId root)
{
    std::vector<uint8_t> visited(nl.nets().size(), 0);
    std::vector<rtl::NetId> regs, inputs;
    collectSources(nl, root, visited, regs, inputs);
    std::vector<uint8_t> is_in(nl.nets().size(), 0);
    for (rtl::NetId id : inputs)
        is_in[static_cast<size_t>(id)] = 1;
    std::vector<std::string> names;
    for (const auto &[name, sig] : nl.signals())
        if (sig.kind == rtl::NetSignal::Kind::Input &&
            is_in[static_cast<size_t>(sig.net)])
            names.push_back(name);
    return names;
}

/** Per-obligation exploration machinery sharing one simulator. */
class Prover
{
  public:
    Prover(rtl::Sim &sim, const Coi &coi, rtl::NetId bad,
           const ProveOptions &opts, uint64_t *steps)
        : _sim(sim), _coi(coi), _bad(bad), _opts(opts),
          _steps(steps), _template(sim.captureRegs()),
          _in_cone(_template.size(), 0)
    {
        for (int ri : coi.regs)
            _in_cone[static_cast<size_t>(ri)] = 1;
        int bits = 0;
        for (int b : coi.input_bits)
            bits += b;
        _combos = 1ull << bits;
    }

    /**
     * Project the committed register state onto the cone (packed
     * words).  Reads only the cone's registers: everything the
     * exploration touches is proportional to the cone, not the
     * design — the wide non-cone datapath is never copied.
     */
    std::vector<uint64_t> projectSim()
    {
        std::vector<uint64_t> words;
        for (int ri : _coi.regs) {
            const BitVec &v =
                _sim.regValue(static_cast<size_t>(ri));
            for (int w = 0; w < v.words(); w++)
                words.push_back(v.word(w));
        }
        return words;
    }

    /**
     * Restore a cone state; non-cone registers are parked back at
     * their reset values.  Their *values* cannot influence the cone
     * or the property (transitive closure), but letting them drift
     * defeats the dirty sweep's change-cutting — every step would
     * recompute the widest datapath cones with fresh values
     * (measured 6x slower on aes).  setReg's equality check makes
     * each write a no-op unless the register actually moved, and no
     * full-register-file vectors are copied.
     */
    void restore(const std::vector<BitVec> &cone_vals)
    {
        size_t c = 0;
        for (size_t i = 0; i < _in_cone.size(); i++) {
            if (_in_cone[i])
                _sim.setReg(i, cone_vals[c++]);
            else
                _sim.setReg(i, _template[i]);
        }
    }

    std::vector<BitVec> captureCone()
    {
        std::vector<BitVec> cone;
        cone.reserve(_coi.regs.size());
        for (int ri : _coi.regs)
            cone.push_back(
                _sim.regValue(static_cast<size_t>(ri)));
        return cone;
    }

    void assignCombo(uint64_t combo)
    {
        for (size_t i = 0; i < _coi.inputs.size(); i++) {
            int bits = _coi.input_bits[i];
            uint64_t v = combo & ((bits >= 64 ? 0ull : 1ull << bits)
                                  - 1ull);
            combo >>= bits;
            _sim.setInput(_coi.inputs[i], v);
        }
    }

    bool badNow() { return _sim.value(_bad).any(); }

    bool budgetLeft() const { return *_steps < _opts.max_steps; }

    uint64_t combos() const { return _combos; }

    /**
     * Bounded reachability from reset, property checked on every
     * frame.  Returns through `out`:
     *   Violated  - with the counterexample input trace
     *   Proved    - the projected reachable space closed clean
     *   Unknown   - bound or budget reached (base is clean to depth
     *               k_max; induction decides)
     */
    void baseCase(ObligationOutcome &out)
    {
        struct Node
        {
            std::vector<BitVec> cone;
            int depth;
            int64_t parent;
            uint64_t combo;   // applied at the parent's frame
        };
        std::vector<Node> nodes;
        StateSet seen;

        _sim.restoreRegs(_template);   // cone regs at reset too
        std::vector<BitVec> reset = captureCone();
        seen.insert(projectSim());
        nodes.push_back({std::move(reset), 0, -1, 0});

        bool hit_bound = false;
        for (size_t i = 0; i < nodes.size(); i++) {
            if (nodes[i].depth >= _opts.k_max) {
                hit_bound = true;
                continue;
            }
            for (uint64_t combo = 0; combo < _combos; combo++) {
                if (!budgetLeft()) {
                    out.detail = "base: step budget exhausted";
                    out.status = ObligationOutcome::Status::Unknown;
                    out.base_states = seen.size();
                    return;
                }
                ++*_steps;
                restore(nodes[i].cone);
                assignCombo(combo);
                if (badNow()) {
                    out.status = ObligationOutcome::Status::Violated;
                    out.k = nodes[i].depth;
                    out.base_states = seen.size();
                    out.detail = strfmt(
                        "reset-reachable violation at depth %d",
                        nodes[i].depth);
                    // Reconstruct the input trace root -> frame.
                    std::vector<uint64_t> path{combo};
                    for (int64_t n = static_cast<int64_t>(i);
                         nodes[n].parent >= 0; n = nodes[n].parent)
                        path.push_back(nodes[n].combo);
                    std::reverse(path.begin(), path.end());
                    for (uint64_t c : path) {
                        CexStep step;
                        for (size_t j = 0; j < _coi.inputs.size();
                             j++) {
                            int bits = _coi.input_bits[j];
                            uint64_t v = c &
                                ((bits >= 64 ? 0ull : 1ull << bits) -
                                 1ull);
                            c >>= bits;
                            step.inputs.push_back(
                                {_coi.inputs[j], v});
                        }
                        out.cex.push_back(std::move(step));
                    }
                    return;
                }
                _sim.step();
                std::vector<uint64_t> key =
                    projectSim();
                if (!seen.count(key)) {
                    seen.insert(std::move(key));
                    nodes.push_back({captureCone(),
                                     nodes[i].depth + 1,
                                     static_cast<int64_t>(i), combo});
                }
            }
        }
        out.base_states = seen.size();
        if (!hit_bound) {
            // The projected reachable space closed without a
            // violation: proved outright.
            out.status = ObligationOutcome::Status::Proved;
            out.exhausted = true;
            out.k = 0;
        }
    }

    /**
     * Inductive step at depth k: from every arbitrary cone state,
     * every loop-free path of k clean frames must end in a clean
     * frame.  Returns Proved / Unknown (budget); a failed step just
     * means "try a larger k", so the caller iterates.
     */
    bool inductionHolds(int k, ObligationOutcome &out, bool *budget_ok)
    {
        uint64_t total = 1ull << _coi.state_bits;
        std::vector<BitVec> cone(_coi.regs.size(), BitVec(1));
        std::vector<std::vector<uint64_t>> path;

        // Depth-first over input choices from one start state.
        // Returns false when a violating k-th frame is found.
        std::function<bool(const std::vector<BitVec> &, int)> dfs =
            [&](const std::vector<BitVec> &state, int depth) -> bool {
            for (uint64_t combo = 0; combo < _combos; combo++) {
                if (!budgetLeft()) {
                    *budget_ok = false;
                    return true;
                }
                ++*_steps;
                restore(state);
                assignCombo(combo);
                bool bad = badNow();
                if (depth == k) {
                    if (bad)
                        return false;   // induction fails at this k
                    continue;
                }
                if (bad)
                    continue;   // path assumption broken: prune
                _sim.step();
                std::vector<uint64_t> key =
                    projectSim();
                bool looped = false;
                for (const auto &p : path)
                    looped |= p == key;
                if (looped)
                    continue;   // uniqueness: loop-free paths only
                std::vector<BitVec> next = captureCone();
                path.push_back(std::move(key));
                bool ok = dfs(next, depth + 1);
                path.pop_back();
                if (!ok)
                    return false;
            }
            return true;
        };

        for (uint64_t s = 0; s < total; s++) {
            out.induction_starts++;
            // Decode the packed enumeration into cone register
            // values.
            uint64_t bits = s;
            for (size_t i = 0; i < _coi.regs.size(); i++) {
                int w = _coi.reg_widths[i];
                uint64_t v = bits &
                    ((w >= 64 ? 0ull : 1ull << w) - 1ull);
                bits >>= w;
                cone[i] = BitVec(w, v);
            }
            restore(cone);
            path.clear();
            path.push_back(projectSim());
            if (!dfs(cone, 0))
                return false;
            if (!*budget_ok)
                return true;   // caller reports Unknown
        }
        return true;
    }

  private:
    rtl::Sim &_sim;
    const Coi &_coi;
    rtl::NetId _bad;
    const ProveOptions &_opts;
    uint64_t *_steps;
    std::vector<BitVec> _template;
    std::vector<uint8_t> _in_cone;   // per reg index
    uint64_t _combos = 1;
};

} // namespace

std::string
ObligationOutcome::statusStr() const
{
    switch (status) {
      case Status::Proved:
        return exhausted ? "proved (reachable space exhausted)"
                         : strfmt("proved (k-induction, k=%d)", k);
      case Status::Violated:
        return strfmt("VIOLATED (depth %d)", k);
      case Status::Unknown:
        return "unknown (" + (detail.empty() ? "bound" : detail) + ")";
      case Status::Conditional:
        return "conditional (" + detail + ")";
    }
    return "?";
}

bool
ProveResult::allProved() const
{
    for (const auto &o : obligations)
        if (o.status != ObligationOutcome::Status::Proved)
            return false;
    return !obligations.empty();
}

bool
ProveResult::anyViolated() const
{
    for (const auto &o : obligations)
        if (o.status == ObligationOutcome::Status::Violated)
            return true;
    return false;
}

bool
ProveResult::anyUnknown() const
{
    for (const auto &o : obligations)
        if (o.status == ObligationOutcome::Status::Unknown)
            return true;
    return false;
}

bool
ProveResult::anyConditional() const
{
    for (const auto &o : obligations)
        if (o.status == ObligationOutcome::Status::Conditional)
            return true;
    return false;
}

std::string
ProveResult::report(bool detailed) const
{
    std::string s;
    for (const auto &o : obligations) {
        s += strfmt("%-40s %4d bit %9.2f ms  %s\n", o.name.c_str(),
                    o.coi_bits, o.millis, o.statusStr().c_str());
        if (detailed) {
            std::string ins;
            for (const auto &in : o.coi_inputs)
                ins += (ins.empty() ? "" : ",") + in;
            s += strfmt("    cone: %d reg(s) / %d bit(s), inputs "
                        "[%s]; base %llu state(s), induction %llu "
                        "start(s), %llu step(s), %.1f ms\n",
                        o.coi_regs, o.coi_bits, ins.c_str(),
                        static_cast<unsigned long long>(
                            o.base_states),
                        static_cast<unsigned long long>(
                            o.induction_starts),
                        static_cast<unsigned long long>(o.steps),
                        o.millis);
        }
    }
    return s;
}

ProveResult
prove(const InstrumentedDesign &design, const ProveOptions &opts)
{
    ProveResult result;
    if (design.props.empty())
        return result;

    rtl::Sim sim(design.module);
    if (opts.sweep_mode != rtl::SweepMode::Dirty)
        sim.setSweepMode(opts.sweep_mode, opts.sweep_threads,
                         /*shard_min=*/64);
    const rtl::Netlist &nl = sim.netlist();
    std::vector<BitVec> reset = sim.captureRegs();

    for (const auto &prop : design.props) {
        ObligationOutcome out;
        out.name = prop.assertion.name;
        out.channel = prop.channel;
        out.rule = prop.rule;
        out.bad_wire = prop.bad_wire;
        auto t0 = std::chrono::steady_clock::now();
        uint64_t steps = 0;

        auto it = nl.signals().find(prop.bad_wire);
        if (it == nl.signals().end()) {
            out.detail = "bad wire not in netlist";
            result.obligations.push_back(std::move(out));
            continue;
        }
        rtl::NetId bad = it->second.net;

        // A stable obligation whose payload is a combinational
        // function of environment inputs (a `@msg`-relative
        // forwarding contract) has no environment-free proof: its
        // stability is exactly what the peer's own contracts
        // guarantee.  Classify instead of "disproving" it with
        // contract-breaking stimulus.
        if (prop.rule == "stable" && !prop.data_wire.empty()) {
            auto dit = nl.signals().find(prop.data_wire);
            if (dit != nl.signals().end()) {
                std::vector<std::string> ins =
                    inputSourcesOf(nl, dit->second.net);
                if (!ins.empty()) {
                    out.status =
                        ObligationOutcome::Status::Conditional;
                    std::string list;
                    for (const auto &in : ins)
                        list += (list.empty() ? "" : ", ") + in;
                    out.detail = "payload reads environment "
                                 "input(s) " + list +
                                 "; stability rests on the peer "
                                 "contracts the type checker "
                                 "verifies compositionally";
                    result.obligations.push_back(std::move(out));
                    continue;
                }
            }
        }

        // Fresh start per obligation: reset registers, zero inputs.
        sim.restoreRegs(reset);
        for (const auto &in : sim.inputNames())
            sim.setInput(in, 0);

        Coi coi = computeCoi(nl, bad, opts);
        out.coi_regs = static_cast<int>(coi.regs.size());
        out.coi_bits = coi.state_bits;
        for (int ri : coi.regs)
            out.coi_reg_names.push_back(
                nl.nameOf(nl.regs()[static_cast<size_t>(ri)]));
        out.coi_inputs = coi.inputs;

        // One profiler track per obligation; its base-case and per-k
        // induction windows become Chrome-trace events alongside the
        // simulator phases.
        int tid = opts.profiler
            ? opts.profiler->track("prove:" + out.name) : -1;

        Prover prover(sim, coi, bad, opts, &steps);
        uint64_t w0 = opts.profiler ? rtl::monotonicNanos() : 0;
        prover.baseCase(out);
        if (opts.profiler)
            opts.profiler->event(tid, "base", w0,
                                 rtl::monotonicNanos(), 0);

        if (out.status == ObligationOutcome::Status::Unknown &&
            out.detail.empty()) {
            // Base clean to the bound: try induction, smallest k
            // first.
            if (coi.state_bits > opts.max_state_bits) {
                out.detail = strfmt(
                    "cone needs %d state bits (budget %d)%s",
                    coi.state_bits, opts.max_state_bits,
                    coi.wide_regs.empty()
                        ? ""
                        : ("; wide: " + coi.wide_regs[0]).c_str());
            } else {
                bool budget_ok = true;
                for (int k = 1; k <= opts.k_max; k++) {
                    uint64_t k0 =
                        opts.profiler ? rtl::monotonicNanos() : 0;
                    bool holds =
                        prover.inductionHolds(k, out, &budget_ok);
                    if (opts.profiler)
                        opts.profiler->event(
                            tid, strfmt("k=%d", k), k0,
                            rtl::monotonicNanos(),
                            static_cast<uint64_t>(k));
                    if (holds) {
                        if (!budget_ok) {
                            out.detail =
                                "induction: step budget exhausted";
                            break;
                        }
                        out.status =
                            ObligationOutcome::Status::Proved;
                        out.k = k;
                        break;
                    }
                    if (!budget_ok) {
                        out.detail =
                            "induction: step budget exhausted";
                        break;
                    }
                }
                if (out.status !=
                        ObligationOutcome::Status::Proved &&
                    out.detail.empty())
                    out.detail = strfmt(
                        "induction inconclusive up to k=%d",
                        opts.k_max);
            }
        }

        out.steps = steps;
        out.millis = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

        if (opts.metrics) {
            obs::MetricsRegistry &m = *opts.metrics;
            m.counter("prove.steps") += out.steps;
            m.counter("prove.base_states") += out.base_states;
            m.counter("prove.induction_starts") +=
                out.induction_starts;
            const char *key = "unknown";
            switch (out.status) {
              case ObligationOutcome::Status::Proved:
                key = "proved"; break;
              case ObligationOutcome::Status::Violated:
                key = "violated"; break;
              case ObligationOutcome::Status::Conditional:
                key = "conditional"; break;
              case ObligationOutcome::Status::Unknown:
                break;
            }
            m.counter(std::string("prove.status.") + key)++;
        }

        result.obligations.push_back(std::move(out));
    }

    if (opts.metrics) {
        // Aggregate throughput over everything this call explored
        // (a step is one projected state visit).
        uint64_t total_steps = 0;
        double total_ms = 0.0;
        for (const auto &o : result.obligations) {
            total_steps += o.steps;
            total_ms += o.millis;
        }
        opts.metrics->gauge("prove.states_per_sec") = total_ms > 0.0
            ? static_cast<double>(total_steps) * 1000.0 / total_ms
            : 0.0;
    }
    return result;
}

void
writeCexVcd(const InstrumentedDesign &design,
            const ObligationOutcome &outcome, std::ostream &os,
            rtl::SweepMode mode, int threads)
{
    rtl::Sim sim(design.module);
    if (mode != rtl::SweepMode::Dirty)
        sim.setSweepMode(mode, threads, /*shard_min=*/64);
    for (const auto &in : sim.inputNames())
        sim.setInput(in, 0);
    rtl::VcdWriter writer(sim, os);
    for (const auto &step : outcome.cex) {
        for (const auto &[name, value] : step.inputs)
            sim.setInput(name, value);
        writer.sample();
        sim.step();
    }
}

} // namespace formal
} // namespace anvil
