/**
 * @file
 * Typed contract inference: from the Anvil program's channel
 * annotations to the one ContractSpec per channel endpoint that the
 * runtime monitors, the offline trace checker, and the k-induction
 * prover all consume.
 *
 * The trace subsystem's netlist inference (trace::inferContracts)
 * guesses a stable+hold default from `<ch>_valid`/`<ch>_ack` name
 * pairs.  This engine derives the same channels — and their clauses —
 * from the *types* instead:
 *
 *  - a message whose sender and receiver sync modes are both dynamic
 *    lowers to a valid/ack handshake, so it gets a runtime-checkable
 *    contract; static and dependent sync modes carry no handshake
 *    wires and nothing to monitor;
 *  - the sending side owes `stable` and `hold`: the type system loans
 *    the payload's registers over the whole pending window (paper
 *    §5.2, the lifetime results in src/types/lifetime.*), so a
 *    well-typed sender can neither mutate the payload nor retract the
 *    offer before the sync completes;
 *  - the receiving side owes `ack within N` when its sync mode
 *    carries a readiness bound (`@dyn#N`): the handshake is still
 *    dynamic, but that side promises to complete it within N cycles
 *    of the offer.
 *
 * Each clause binds one party.  Clauses owed by the process under
 * observation are its *obligations* (checked by monitors, proved by
 * the prover); clauses owed by its peer are *assumptions* about the
 * environment (reported, and judged only on recordings of a closed
 * system where the peer is also under test).
 */

#ifndef ANVIL_FORMAL_CONTRACTS_H
#define ANVIL_FORMAL_CONTRACTS_H

#include <string>
#include <vector>

#include "lang/ast.h"
#include "trace/contracts.h"

namespace anvil {
namespace formal {

/** One top-level channel endpoint's inferred contract, split by the
 *  party each clause binds. */
struct ChannelContract
{
    std::string channel;      // signal prefix: <endpoint>_<msg>
    std::string endpoint;     // top-process endpoint parameter
    std::string msg;          // message name in the channel type
    bool design_sends = false;

    /** Clauses the design owes (monitored and proved). */
    trace::ContractSpec design;

    /** Clauses the environment owes (reported as assumptions). */
    trace::ContractSpec env;

    /** Declared payload lifetime (`@#N`, `@msg+k`), for reporting. */
    std::string lifetime;

    /**
     * Lifetime-analysis provenance of the stable/hold clauses: the
     * payload value's lifetime interval at each send site of this
     * message, rendered by types/lifetime (empty when the design
     * only receives).
     */
    std::vector<std::string> send_lifetimes;
};

/** The inferred contract set of one compiled program's top process. */
struct ContractSet
{
    std::string top;
    std::vector<ChannelContract> channels;

    /** The design-obligation specs with at least one clause
     *  (clause-less channels — the design receives on an unbounded
     *  `@dyn` side — stay listed in `channels` and str(), but are
     *  not handed to checkers). */
    std::vector<trace::ContractSpec> obligations() const;

    /** Environment-assumption specs with at least one clause:
     *  what `--infer-contracts` reports as `assume` lines, and what
     *  a closed-system recording (peer also under test) would be
     *  judged against. */
    std::vector<trace::ContractSpec> assumptions() const;

    /** Find a channel's contract by signal prefix, or null. */
    const ChannelContract *find(const std::string &channel) const;

    /** Human-readable table: one `contract`/`assume` line per side
     *  that carries clauses, with lifetime provenance. */
    std::string str() const;
};

/**
 * Infer the contract set for process `top` of a parsed program.
 * Walks the top process's endpoint parameters, keeps every message
 * with a dynamic/dynamic handshake, and splits the clauses by the
 * party that owes them.  Re-elaborates the process (single
 * iteration) to attach lifetime provenance to each send site.
 *
 * For the *top-level* channels the derived set coincides with
 * trace::inferContracts' netlist guess — every design-driven
 * valid/ack pair is a dynamic message the design sends — but carries
 * the `@dyn#N` ack bounds the netlist cannot see (pinned by
 * tests/test_formal_infer).  Internal channels of spawned children
 * flatten to plain wires and are invisible here; anvilc merges the
 * netlist guess back in for those, so hierarchical designs keep
 * their internal handshakes monitored.
 */
ContractSet inferContracts(const Program &prog, const std::string &top);

/**
 * The checker-facing spec list of a compiled design: the typed
 * design obligations, plus trace::inferContracts' netlist guess for
 * every handshake the typed set cannot see — internal channels of
 * spawned children flatten to plain wires, not top-level endpoints,
 * but their valid/ack pairs are just as monitorable.  The typed
 * obligations come first (anvilc prints the netlist-guessed tail as
 * internal channels).
 */
std::vector<trace::ContractSpec> checkableSpecs(
    const ContractSet &typed, const rtl::Netlist &nl);

} // namespace formal
} // namespace anvil

#endif // ANVIL_FORMAL_CONTRACTS_H
