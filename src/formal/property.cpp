#include "formal/property.h"

#include "support/strings.h"

namespace anvil {
namespace formal {

using rtl::ExprPtr;
using rtl::Op;

namespace {

/** Width of a named top-level signal, or -1 when absent. */
int
widthOf(const rtl::Module &m, const std::string &n)
{
    if (const rtl::Port *p = m.findPort(n))
        return p->width;
    if (const rtl::WireDecl *w = m.findWire(n))
        return w->width;
    if (const rtl::RegDecl *r = m.findReg(n))
        return r->width;
    return -1;
}

/** Bits needed to count up to n. */
int
bitsFor(int n)
{
    int w = 1;
    while ((1 << w) <= n)
        w++;
    return w;
}

} // namespace

std::vector<verif::Assertion>
InstrumentedDesign::assertions() const
{
    std::vector<verif::Assertion> out;
    for (const auto &p : props)
        out.push_back(p.assertion);
    return out;
}

InstrumentedDesign
compileProperties(const rtl::Module &top,
                  const std::vector<trace::ContractSpec> &specs)
{
    InstrumentedDesign d;
    d.module = std::make_shared<rtl::Module>(top);
    rtl::Module &m = *d.module;

    for (const auto &spec : specs) {
        if (!spec.stable && !spec.hold && spec.ack_within <= 0)
            continue;
        int vw = widthOf(top, spec.channel + "_valid");
        int aw = widthOf(top, spec.channel + "_ack");
        if (vw < 0 || aw < 0)
            continue;   // channel not exposed by this module
        ExprPtr valid = rtl::ref(spec.channel + "_valid", vw);
        ExprPtr ack = rtl::ref(spec.channel + "_ack", aw);
        if (vw != 1)
            valid = rtl::unop(Op::RedOr, valid);
        if (aw != 1)
            ack = rtl::unop(Op::RedOr, ack);
        ExprPtr pending_in = valid & ~ack;   // offer not completing

        // Shared pending tracker for this channel.
        std::string base = "__fml_" + spec.channel;
        ExprPtr pend = m.reg(base + "_pend", 1, 0);
        m.update(base + "_pend", rtl::cst(1, 1), pending_in);

        auto emit = [&](const std::string &rule, ExprPtr bad,
                        const std::string &data_wire = "") {
            std::string wire = base + "_" + rule + "_bad";
            m.wire(wire, std::move(bad));
            CompiledProperty p;
            p.channel = spec.channel;
            p.rule = rule;
            p.bad_wire = wire;
            p.data_wire = data_wire;
            p.assertion = {"contract:" + spec.channel + ":" + rule,
                           rtl::cst(1, 1),
                           rtl::unop(Op::Not, rtl::ref(wire, 1))};
            d.props.push_back(std::move(p));
        };

        if (spec.hold)
            emit("hold", pend & ~valid);

        int dw = widthOf(top, spec.channel + "_data");
        if (spec.stable && dw > 0) {
            // Shadow of the offered payload: captured while the
            // channel is not pending (the offer cycle included),
            // frozen while it is.
            ExprPtr data = rtl::ref(spec.channel + "_data", dw);
            ExprPtr shadow = m.reg(base + "_shadow", dw, 0);
            m.update(base + "_shadow", rtl::cst(1, 1),
                     rtl::mux(pend, shadow, data));
            emit("stable", pend & ne(data, shadow),
                 spec.channel + "_data");
        }

        if (spec.ack_within > 0) {
            // Completed pending cycles, saturating at N so the
            // counter stays narrow.
            int n = spec.ack_within;
            int cw = bitsFor(n);
            ExprPtr cnt = m.reg(base + "_cnt", cw, 0);
            ExprPtr sat = rtl::mux(
                rtl::binop(Op::Ge, cnt, rtl::cst(cw, n)), cnt,
                cnt + rtl::cst(cw, 1));
            m.update(base + "_cnt", rtl::cst(1, 1),
                     rtl::mux(pending_in, sat, rtl::cst(cw, 0)));
            // Elapsed = cnt + 1 on an un-acked offer cycle; the
            // deadline trips when elapsed >= N — the same cycle
            // trace::ChannelChecker first reports it.
            emit("ack-within",
                 pending_in &
                     rtl::binop(Op::Ge, cnt, rtl::cst(cw, n - 1)));
        }
    }
    return d;
}

} // namespace formal
} // namespace anvil
