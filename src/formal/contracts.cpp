#include "formal/contracts.h"

#include "ir/elaborate.h"
#include "support/strings.h"
#include "types/lifetime.h"

namespace anvil {
namespace formal {

namespace {

/** Sync mode of the side that sends message `m`. */
const SyncMode &
senderSync(const MessageDef &m)
{
    return m.dir == MsgDir::Right ? m.left_sync : m.right_sync;
}

/** Sync mode of the side that receives message `m`. */
const SyncMode &
receiverSync(const MessageDef &m)
{
    return m.dir == MsgDir::Right ? m.right_sync : m.left_sync;
}

/** True when the process holding `side` of the channel sends `m`. */
bool
sideSends(EndpointSide side, const MessageDef &m)
{
    return side == EndpointSide::Left ? m.dir == MsgDir::Right
                                      : m.dir == MsgDir::Left;
}

} // namespace

std::vector<trace::ContractSpec>
ContractSet::obligations() const
{
    // Clause-less specs (the design receives on an unbounded @dyn
    // side) monitor nothing; handing them to checkers only inflates
    // contract counts and skip notes.  They stay visible in
    // `channels` / str() as "none".
    std::vector<trace::ContractSpec> out;
    for (const auto &c : channels)
        if (c.design.ack_within > 0 || c.design.stable ||
            c.design.hold)
            out.push_back(c.design);
    return out;
}

std::vector<trace::ContractSpec>
ContractSet::assumptions() const
{
    std::vector<trace::ContractSpec> out;
    for (const auto &c : channels)
        if (c.env.ack_within > 0 || c.env.stable || c.env.hold)
            out.push_back(c.env);
    return out;
}

const ChannelContract *
ContractSet::find(const std::string &channel) const
{
    for (const auto &c : channels)
        if (c.channel == channel)
            return &c;
    return nullptr;
}

std::string
ContractSet::str() const
{
    std::string s;
    for (const auto &c : channels) {
        s += strfmt("contract %s\n", c.design.str().c_str());
        if (c.env.ack_within > 0 || c.env.stable || c.env.hold)
            s += strfmt("assume   %s\n", c.env.str().c_str());
        s += strfmt("  // %s.%s: %s, lifetime @%s",
                    c.endpoint.c_str(), c.msg.c_str(),
                    c.design_sends ? "design sends" : "design receives",
                    c.lifetime.c_str());
        for (const auto &lt : c.send_lifetimes)
            s += strfmt(", payload live %s", lt.c_str());
        s += "\n";
    }
    return s;
}

std::vector<trace::ContractSpec>
checkableSpecs(const ContractSet &typed, const rtl::Netlist &nl)
{
    std::vector<trace::ContractSpec> out = typed.obligations();
    for (auto &spec : trace::inferContracts(nl))
        if (!typed.find(spec.channel))
            out.push_back(std::move(spec));
    return out;
}

ContractSet
inferContracts(const Program &prog, const std::string &top)
{
    ContractSet set;
    set.top = top;
    const ProcDef *proc = prog.findProc(top);
    if (!proc)
        return set;

    // Re-elaborate (single iteration, diagnostics discarded — the
    // caller has already compiled this program) to attach the
    // lifetime of each send site's payload value: the interval the
    // type system proves unchanging, which is what makes the
    // stable/hold obligations sound for a well-typed sender.
    DiagEngine scratch;
    ProcIR pir = elaborateProc(prog, *proc, scratch, /*unroll=*/1);

    for (const auto &param : proc->params) {
        const ChannelDef *chan = prog.findChannel(param.chan_type);
        if (!chan)
            continue;
        for (const auto &m : chan->messages) {
            // Only dynamic/dynamic messages lower to a valid/ack
            // handshake; anything else has no wires to monitor.
            if (senderSync(m).kind != SyncMode::Kind::Dynamic ||
                receiverSync(m).kind != SyncMode::Kind::Dynamic)
                continue;

            ChannelContract c;
            c.channel = param.name + "_" + m.name;
            c.endpoint = param.name;
            c.msg = m.name;
            c.design_sends = sideSends(param.side, m);
            c.lifetime = m.lifetime.str();

            // Sender-side clauses: payload unchanging (stable) and
            // offer not retracted (hold) while the sync is pending.
            trace::ContractSpec sender;
            sender.channel = c.channel;
            sender.stable = true;
            sender.hold = true;

            // Receiver-side clause: the `@dyn#N` readiness bound.
            trace::ContractSpec receiver;
            receiver.channel = c.channel;
            receiver.stable = false;
            receiver.hold = false;
            receiver.ack_within = receiverSync(m).cycles > 0
                ? receiverSync(m).cycles : 0;

            c.design = c.design_sends ? sender : receiver;
            c.env = c.design_sends ? receiver : sender;

            if (c.design_sends) {
                for (const auto &tir : pir.threads) {
                    for (const auto &send : tir->sends) {
                        if (send.endpoint != param.name ||
                            send.msg != m.name)
                            continue;
                        for (const auto &use : tir->uses) {
                            if (use.kind != UseKind::SendPayload ||
                                use.use_ev != send.init_ev)
                                continue;
                            c.send_lifetimes.push_back(
                                lifetimeStr(use.value));
                        }
                    }
                }
            }
            set.channels.push_back(std::move(c));
        }
    }
    return set;
}

} // namespace formal
} // namespace anvil
