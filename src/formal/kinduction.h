/**
 * @file
 * Explicit-state k-induction prover for compiled contract properties.
 *
 * The legacy BMC (src/verif/bmc.h) explores the design's *full*
 * packed register state breadth-first — which is exactly what
 * explodes on wide counters (Listing 2): every counter value is a
 * distinct state, so the budget drowns long before anything
 * interesting happens.  This prover closes that gap for the
 * contracts the formal subsystem compiles, with two ingredients
 * layered on the same interned-netlist substrate:
 *
 *  1. Cone-of-influence projection.  Starting from a property's
 *     `bad` net, the transitive closure over netlist operands and
 *     register update functions yields the registers and inputs that
 *     can influence the property — for handshake contracts a handful
 *     of control bits, regardless of how wide the datapath is.
 *     Registers outside the cone cannot affect the cone's next-state
 *     functions or the property (the closure is transitive), so
 *     states are explored and identified *projected onto the cone*:
 *     the wide counter simply stops existing.
 *
 *  2. k-induction.  Base case: bounded reachability from reset over
 *     projected states, checking the property on every frame — a
 *     violation here is a real, reset-reachable counterexample, and
 *     its input trace is replayed into a VCD that `--replay` and
 *     `--check-trace` consume directly.  Inductive step: from every
 *     *arbitrary* projected state, every loop-free (pairwise-
 *     distinct) path of k property-satisfying frames must lead to a
 *     property-satisfying k-th frame.  If the step holds (and the
 *     base is clean), the property holds in all reachable states,
 *     unboundedly.
 *
 * Environment model: as in BmcOptions, each cone input contributes
 * its low `input_bits_limit` bits nondeterministically and the rest
 * are zero; proofs are relative to that input sampling.  Budgets
 * (cone bits, simulation steps) degrade to an Unknown verdict with a
 * diagnostic, never to a wrong one.
 */

#ifndef ANVIL_FORMAL_KINDUCTION_H
#define ANVIL_FORMAL_KINDUCTION_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "formal/property.h"
#include "rtl/interp.h"

namespace anvil {

namespace obs {
class TraceProfiler;
class MetricsRegistry;
} // namespace obs

namespace formal {

/** Knobs for the prover. */
struct ProveOptions
{
    /** Maximum induction depth to try (and base-case bound). */
    int k_max = 6;
    /** Nondeterministic low bits per cone input (BMC convention). */
    int input_bits_limit = 2;
    /** Cap on total enumerated input bits per frame. */
    int max_input_bits = 10;
    /** Budget on cone register bits (induction enumerates 2^bits). */
    int max_state_bits = 22;
    /** Budget on simulation steps across base + induction. */
    uint64_t max_steps = 4000000;
    /** Sweep strategy of the underlying simulator; all modes prove
     *  identical verdicts (pinned by tests/test_formal_prove). */
    rtl::SweepMode sweep_mode = rtl::SweepMode::Dirty;
    int sweep_threads = 0;
    /** Optional telemetry sinks (both may be null; the prover then
     *  takes no clock reads for them).  Each obligation's base-case
     *  and per-k induction windows land on a "prove:<name>" profiler
     *  track, and prove.* counters plus a prove.states_per_sec gauge
     *  go to the registry — the same spine `--profile`/`--metrics`
     *  use for simulation runs. */
    obs::TraceProfiler *profiler = nullptr;
    obs::MetricsRegistry *metrics = nullptr;
};

/** One recorded counterexample frame: cone inputs driven that cycle. */
struct CexStep
{
    std::vector<std::pair<std::string, uint64_t>> inputs;
};

/** Verdict for one compiled obligation. */
struct ObligationOutcome
{
    /**
     * Proved / Violated / Unknown are the prover's own verdicts.
     * Conditional marks a stable obligation whose payload reads
     * environment inputs combinationally (a `@msg`-relative
     * forwarding contract, like the TLB's `@req` response): no
     * environment-free proof exists, because its stability is
     * exactly what the *peer's* contracts guarantee — the
     * compositional case the type checker discharges statically.
     * The prover classifies it instead of reporting a misleading
     * violation under contract-breaking stimulus.
     */
    enum class Status { Proved, Violated, Unknown, Conditional };

    std::string name;       // assertion name: contract:<ch>:<rule>
    std::string channel;
    std::string rule;
    std::string bad_wire;
    Status status = Status::Unknown;

    /** Proved: k the induction closed at (0 = reachable-space
     *  closure).  Violated: depth of the violating frame. */
    int k = 0;
    /** Proved by exhausting the projected reachable space. */
    bool exhausted = false;

    int coi_regs = 0;
    int coi_bits = 0;
    std::vector<std::string> coi_reg_names;
    std::vector<std::string> coi_inputs;
    uint64_t base_states = 0;       // projected states reached
    uint64_t induction_starts = 0;  // arbitrary states enumerated
    uint64_t steps = 0;             // simulation steps consumed
    double millis = 0.0;
    std::string detail;             // budget reason / cex summary

    /** Reset-reachable violation: per-cycle cone input vectors, the
     *  violating frame last.  Empty unless status == Violated. */
    std::vector<CexStep> cex;

    std::string statusStr() const;
};

/** Outcome of proving every obligation of an instrumented design. */
struct ProveResult
{
    std::vector<ObligationOutcome> obligations;

    bool allProved() const;       // every obligation strictly Proved
    bool anyViolated() const;
    bool anyUnknown() const;      // Unknown only; Conditional is a
                                  // classification, not a budget
    bool anyConditional() const;

    /** One line per obligation; `detailed` adds cone and budget
     *  statistics. */
    std::string report(bool detailed = false) const;
};

/** Prove every compiled property of the instrumented design. */
ProveResult prove(const InstrumentedDesign &design,
                  const ProveOptions &opts = {});

/**
 * Replay a Violated obligation's input trace from reset and dump the
 * run as VCD (rtl::VcdWriter format: every named signal, monitor
 * blocks included).  The dump's final frame shows the violation, so
 * `anvilc --check-trace` flags the same contract at the same cycle,
 * and `--replay` re-executes it.  Bytes are identical across sweep
 * modes.
 */
void writeCexVcd(const InstrumentedDesign &design,
                 const ObligationOutcome &outcome, std::ostream &os,
                 rtl::SweepMode mode = rtl::SweepMode::Dirty,
                 int threads = 0);

} // namespace formal
} // namespace anvil

#endif // ANVIL_FORMAL_KINDUCTION_H
