#include "types/checker.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/strings.h"

namespace anvil {

namespace {

/** Checker for a single thread. */
class ThreadChecker
{
  public:
    ThreadChecker(const ProcIR &pir, const ThreadIR &tir,
                  DiagEngine &diags, CheckResult &result)
        : _pir(pir), _tir(tir), _diags(diags), _result(result),
          _ord(tir.graph)
    {
    }

    LoanTable run();

  private:
    void checkLoopProgress();
    void checkUses(LoanTable &loans);
    void checkAssigns(const LoanTable &loans);
    void checkSendOverlap();
    void checkSyncModes();

    void error(const std::string &msg, SrcLoc loc)
    {
        std::string key = msg + "@" + loc.str();
        if (_reported.insert(key).second)
            _diags.error(msg, loc);
        _result.safe = false;
    }

    void traceLine(const std::string &text, bool ok)
    {
        _result.trace.push_back({text, ok});
        if (!ok)
            _result.safe = false;
    }

    const ProcIR &_pir;
    const ThreadIR &_tir;
    DiagEngine &_diags;
    CheckResult &_result;
    Ordering _ord;
    std::set<std::string> _reported;
};

void
ThreadChecker::checkLoopProgress()
{
    EventId boundary = _tir.graph.iterBoundary();
    if (boundary == kNoEvent)
        return;
    Gap lb = _ord.gapLb(boundary, _tir.root);
    bool ok = lb >= 1;
    traceLine(strfmt("loop iteration takes at least %lld cycle(s)",
                     ok ? static_cast<long long>(lb) : 0LL), ok);
    if (!ok) {
        error("Loop body may complete within zero cycles",
              _tir.def ? _tir.def->loc : SrcLoc{});
    }
}

void
ThreadChecker::checkUses(LoanTable &loans)
{
    for (const auto &u : _tir.uses) {
        // Only report diagnostics for the first unrolled copy; the
        // second copy exists so cross-iteration conflicts surface in
        // the loan/overlap checks.
        bool first_iter =
            _tir.graph.node(u.use_ev).iteration == 0;

        bool ok = true;
        if (u.point) {
            // The value must be live throughout the use cycle: for
            // every end pattern p, tau(p) > tau(use).
            for (const auto &p : u.value.end.pats) {
                if (_ord.patGapLb(p, EventPattern::atEvent(u.use_ev))
                    < 1) {
                    ok = false;
                    break;
                }
            }
        } else {
            // Send: the contract window end must be covered.
            for (const auto &p : u.value.end.pats) {
                if (!_ord.patLe(u.required_end, p)) {
                    ok = false;
                    break;
                }
            }
        }

        if (first_iter) {
            std::string what =
                u.kind == UseKind::SendPayload ? "message send" :
                u.kind == UseKind::AssignRhs ? "register assignment" :
                "condition";
            traceLine(strfmt("value %s used at e%d in %s; available %s",
                             lifetimeStr(u.value).c_str(), u.use_ev,
                             what.c_str(),
                             ok ? "in time" : "TOO SHORT"), ok);
        }
        if (!ok && first_iter) {
            if (u.kind == UseKind::SendPayload)
                error("Value not live long enough in message send!",
                      u.loc);
            else
                error("Value not live long enough!", u.loc);
        }

        // Record loans for every register the value depends on.  The
        // loan end is the exclusive expiry: one cycle past a point
        // use, or the contract window end for sends.
        for (const auto &reg : u.value.regs) {
            Loan l;
            l.reg = reg;
            l.start = u.value.create;
            l.end = u.point ? EventPattern::fixed(u.use_ev, 1)
                            : u.required_end;
            l.loc = u.loc;
            l.why = u.kind == UseKind::SendPayload
                ? "sent in message" : "used by signal";
            loans.add(std::move(l));
        }
    }
}

void
ThreadChecker::checkAssigns(const LoanTable &loans)
{
    for (const auto &a : _tir.assigns) {
        bool first_iter = _tir.graph.node(a.ev).iteration == 0;
        for (const auto &l : loans.loansOf(a.reg)) {
            if (!_ord.compatible(a.ev, l.start))
                continue;
            // Safe iff the mutation is strictly before the loan
            // starts, or the mutation takes effect (one cycle after
            // the assignment) no earlier than the loan expiry
            // (Def. C.15: MutSet is checked on [a, b), where b is the
            // last use cycle).
            bool before = _ord.lt(a.ev, l.start);
            bool after = _ord.patLe(l.end, EventPattern::fixed(a.ev, 1));
            bool ok = before || after;
            if (!ok || first_iter ||
                _tir.graph.node(l.start).iteration == 0) {
                traceLine(strfmt("register '%s' mutated at e%d; "
                                 "loan [e%d, %s) %s",
                                 a.reg.c_str(), a.ev, l.start,
                                 l.end.str().c_str(),
                                 ok ? "not violated" : "VIOLATED"),
                          ok);
            }
            if (!ok) {
                error(strfmt("Attempted assignment to a loaned "
                             "register '%s'", a.reg.c_str()), a.loc);
            }
        }
    }
}

void
ThreadChecker::checkSendOverlap()
{
    for (size_t i = 0; i < _tir.sends.size(); i++) {
        for (size_t j = i + 1; j < _tir.sends.size(); j++) {
            const SendRecord &s1 = _tir.sends[i];
            const SendRecord &s2 = _tir.sends[j];
            if (s1.endpoint != s2.endpoint || s1.msg != s2.msg)
                continue;
            if (!_ord.compatible(s1.done_ev, s2.done_ev))
                continue;
            bool s1_first = _ord.patLeEvent(s1.expiry, s2.init_ev);
            bool s2_first = _ord.patLeEvent(s2.expiry, s1.init_ev);
            bool ok = s1_first || s2_first;
            bool relevant =
                _tir.graph.node(s1.done_ev).iteration == 0;
            if (relevant) {
                traceLine(strfmt("sends of %s.%s at e%d and e%d %s",
                                 s1.endpoint.c_str(), s1.msg.c_str(),
                                 s1.done_ev, s2.done_ev,
                                 ok ? "do not overlap" : "MAY OVERLAP"),
                          ok);
                if (!ok) {
                    error(strfmt("Possibly overlapping sends of "
                                 "message '%s.%s'", s1.endpoint.c_str(),
                                 s1.msg.c_str()), s2.loc);
                }
            }
        }
    }
}

void
ThreadChecker::checkSyncModes()
{
    // Group synchronization sites by message.
    std::map<std::string, std::vector<const SyncRecord *>> by_msg;
    for (const auto &s : _tir.syncs)
        by_msg[s.endpoint + "." + s.msg].push_back(&s);

    for (auto &[key, sites] : by_msg) {
        const SyncRecord &first = *sites[0];
        const MessageDef *m = _pir.contract(first.endpoint, first.msg);
        const EndpointInfo *info = _pir.findEndpoint(first.endpoint);
        if (!m || !info)
            continue;
        const SyncMode &ours = info->side == EndpointSide::Left
            ? m->left_sync : m->right_sync;
        const SyncMode &theirs = info->side == EndpointSide::Left
            ? m->right_sync : m->left_sync;

        // Receiver with a static mode: we promise to be ready again
        // within N cycles, so consecutive receives must be bounded.
        if (!first.is_send && ours.kind == SyncMode::Kind::Static) {
            for (size_t k = 0; k + 1 < sites.size(); k++) {
                Gap ub = _ord.gapUb(sites[k + 1]->ev, sites[k]->ev);
                if (ub > ours.cycles) {
                    error(strfmt("receive of '%s' may not meet its "
                                 "static sync mode @#%d", key.c_str(),
                                 ours.cycles), sites[k + 1]->loc);
                }
            }
        }
        // Sender whose peer has a static mode: the peer is only
        // guaranteed ready N cycles after the previous sync.
        if (first.is_send && theirs.kind == SyncMode::Kind::Static) {
            for (size_t k = 0; k + 1 < sites.size(); k++) {
                Gap lb = _ord.gapLb(sites[k + 1]->ev, sites[k]->ev);
                if (lb < theirs.cycles) {
                    error(strfmt("sends of '%s' may be closer than the "
                                 "receiver's static sync mode @#%d",
                                 key.c_str(), theirs.cycles),
                          sites[k + 1]->loc);
                }
            }
        }
    }
}

LoanTable
ThreadChecker::run()
{
    LoanTable loans;
    checkLoopProgress();
    checkUses(loans);
    checkAssigns(loans);
    checkSendOverlap();
    checkSyncModes();
    return loans;
}

} // namespace

std::string
CheckResult::traceStr() const
{
    std::ostringstream os;
    for (const auto &l : trace)
        os << (l.ok ? "  [ok]   " : "  [FAIL] ") << l.text << "\n";
    os << "Final decision: " << (safe ? "SAFE" : "UNSAFE") << "\n";
    return os.str();
}

CheckResult
checkProc(const ProcIR &pir, DiagEngine &diags)
{
    CheckResult result;

    // Registers written from more than one thread are rejected; reads
    // across threads only warn (the formal model types one thread at
    // a time; see DESIGN.md).
    std::map<std::string, int> writer_count;
    for (const auto &t : pir.threads)
        for (const auto &r : t->regs_written)
            writer_count[r]++;
    for (const auto &[reg, n] : writer_count) {
        if (n > 1) {
            diags.error(strfmt("register '%s' is assigned from %d "
                               "threads", reg.c_str(), n),
                        pir.def->loc);
            result.safe = false;
        }
    }
    for (const auto &t : pir.threads) {
        for (const auto &r : t->regs_read) {
            if (!t->regs_written.count(r) && writer_count[r] > 0) {
                diags.warning(strfmt("register '%s' is read across "
                                     "threads; treated as a one-cycle "
                                     "snapshot", r.c_str()),
                              pir.def->loc);
            }
        }
    }

    int errors_before = diags.errorCount();
    for (const auto &t : pir.threads) {
        ThreadChecker checker(pir, *t, diags, result);
        result.loan_tables.push_back(checker.run());
    }
    if (diags.errorCount() > errors_before)
        result.safe = false;
    return result;
}

} // namespace anvil
