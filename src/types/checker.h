/**
 * @file
 * The Anvil timing-safety type checker (paper §5).
 *
 * Given an elaborated process (two-iteration unrolled event graphs
 * plus the recorded uses, assignments and sends), the checker
 * enforces the three properties of §5:
 *
 *   1. Valid value use      - every use falls inside the value's
 *                             lifetime;
 *   2. Valid register mutation - no mutation during a loan;
 *   3. Valid message send   - the sent value covers the contract
 *                             window, and send windows of the same
 *                             message never overlap.
 *
 * It additionally verifies static sync modes, rejects zero-cycle loop
 * bodies, and flags registers written from multiple threads.
 */

#ifndef ANVIL_TYPES_CHECKER_H
#define ANVIL_TYPES_CHECKER_H

#include <string>
#include <vector>

#include "ir/elaborate.h"
#include "support/diag.h"
#include "types/lifetime.h"

namespace anvil {

/** One line of the Fig. 5 style "checks at compile time" trace. */
struct CheckLine
{
    std::string text;
    bool ok = true;
};

/** The outcome of checking one process. */
struct CheckResult
{
    bool safe = true;
    std::vector<CheckLine> trace;       ///< per-check derivation lines
    std::vector<LoanTable> loan_tables; ///< one per thread

    /** Render the derivation in the style of Fig. 5. */
    std::string traceStr() const;
};

/**
 * Type check an elaborated process.  Errors and warnings are added to
 * @p diags; the returned result additionally carries the per-check
 * derivation trace used by the figure benches.
 */
CheckResult checkProc(const ProcIR &pir, DiagEngine &diags);

} // namespace anvil

#endif // ANVIL_TYPES_CHECKER_H
