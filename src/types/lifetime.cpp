#include "types/lifetime.h"

#include <sstream>

#include "support/strings.h"

namespace anvil {

const std::vector<Loan> LoanTable::_empty;

std::string
Loan::str() const
{
    return strfmt("%s loaned [e%d, %s) (%s)", reg.c_str(), start,
                  end.str().c_str(), why.c_str());
}

void
LoanTable::add(Loan loan)
{
    _loans[loan.reg].push_back(std::move(loan));
}

const std::vector<Loan> &
LoanTable::loansOf(const std::string &reg) const
{
    auto it = _loans.find(reg);
    return it != _loans.end() ? it->second : _empty;
}

std::string
LoanTable::str() const
{
    std::ostringstream os;
    for (const auto &[reg, loans] : _loans) {
        os << reg << ":\n";
        for (const auto &l : loans)
            os << "  [e" << l.start << ", " << l.end.str() << ")  "
               << l.why << "\n";
    }
    return os.str();
}

std::string
lifetimeStr(const ValueInfo &v)
{
    return strfmt("[e%d, %s)", v.create, v.end.str().c_str());
}

} // namespace anvil
