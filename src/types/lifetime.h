/**
 * @file
 * Lifetimes and loan times (paper §5.2).
 *
 * A lifetime `[e, S)` is the interval in which a value is unchanging
 * and meaningful; it is carried on ValueInfo (src/ir/elaborate.h).
 * A loan time is the collection of intervals during which a register
 * must not be mutated because a signal sourced from it is live.
 */

#ifndef ANVIL_TYPES_LIFETIME_H
#define ANVIL_TYPES_LIFETIME_H

#include <map>
#include <string>
#include <vector>

#include "ir/elaborate.h"
#include "ir/ordering.h"

namespace anvil {

/** One loaned interval of a register. */
struct Loan
{
    std::string reg;
    EventId start = kNoEvent;   ///< value creation event
    EventPattern end;           ///< exclusive end of the loan
    SrcLoc loc;                 ///< where the loaning use occurs
    std::string why;            ///< human-readable cause

    std::string str() const;
};

/** Loan table: register name -> all loaned intervals. */
class LoanTable
{
  public:
    void add(Loan loan);

    const std::vector<Loan> &loansOf(const std::string &reg) const;

    const std::map<std::string, std::vector<Loan>> &all() const
    {
        return _loans;
    }

    /** Render the table (used by the Fig. 6 bench). */
    std::string str() const;

  private:
    std::map<std::string, std::vector<Loan>> _loans;
    static const std::vector<Loan> _empty;
};

/** Render a value's lifetime, e.g. "[e3, {e2 |> #1, e1 |> ch1.m})". */
std::string lifetimeStr(const ValueInfo &v);

} // namespace anvil

#endif // ANVIL_TYPES_LIFETIME_H
