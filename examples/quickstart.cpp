/**
 * @file
 * Quickstart: compile a small Anvil program, inspect the timing-check
 * trace, print the generated SystemVerilog, and simulate the design.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "rtl/interp.h"

using namespace anvil;

int
main()
{
    // A ping server: receives a byte, answers with byte+1 the next
    // cycle.  The channel contract says the request stays valid until
    // the response sync, and the response is valid for one cycle.
    const char *source = R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1)
}

proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)";

    printf("--- source ---\n%s\n", source);

    CompileOutput out = compileAnvil(source);
    if (!out.ok) {
        printf("type errors:\n%s\n", out.diags.render().c_str());
        return 1;
    }
    printf("--- timing checks ---\n%s\n",
           out.checks.at("ping_server").traceStr().c_str());

    printf("--- generated SystemVerilog ---\n%s\n",
           out.systemverilog.c_str());

    // Simulate: drive the handshake by hand.
    printf("--- simulation ---\n");
    rtl::Sim sim(out.module("ping_server"));
    for (uint64_t v : {10, 42, 200}) {
        sim.setInput("io_ping_data", v);
        sim.setInput("io_ping_valid", 1);
        sim.setInput("io_pong_ack", 1);
        for (int i = 0; i < 10; i++) {
            bool pong = sim.peek("io_pong_valid").any();
            uint64_t data = sim.peek("io_pong_data").toUint64();
            sim.step();
            sim.setInput("io_ping_valid", 0);
            if (pong) {
                printf("ping %3llu -> pong %3llu\n",
                       (unsigned long long)v,
                       (unsigned long long)data);
                break;
            }
        }
    }
    return 0;
}
