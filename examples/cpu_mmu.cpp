/**
 * @file
 * A miniature CPU memory path: the Anvil-compiled TLB backed by the
 * Anvil-compiled page table walker.  Translations first miss in the
 * TLB and pay the multi-level walk; after the refill they hit in one
 * round trip — the dynamic-latency behaviour static contracts cannot
 * express (§2.4).
 *
 * Build & run:  ./build/examples/cpu_mmu
 */

#include <cstdio>
#include <map>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"

using namespace anvil;

namespace {

/** Physical memory holding a 3-level page table. */
struct PtMemory
{
    std::map<uint64_t, uint64_t> pte;
    int pend = -1;
    uint64_t addr = 0;

    void drive(rtl::Sim &ptw)
    {
        bool req = ptw.peek("m_mreq_valid").any();
        ptw.setInput("m_mreq_ack", req && pend < 0 ? 1 : 0);
        if (req && pend < 0) {
            addr = ptw.peek("m_mreq_data").toUint64();
            pend = 2;
        }
        if (pend == 0) {
            auto it = pte.find(addr);
            ptw.setInput("m_mres_data",
                         BitVec(64, it != pte.end() ? it->second : 0));
            ptw.setInput("m_mres_valid", 1);
            if (ptw.peek("m_mres_ack").any())
                pend = -1;
        } else {
            ptw.setInput("m_mres_valid", 0);
            if (pend > 0)
                pend--;
        }
    }
};

} // namespace

int
main()
{
    CompileOutput tlb_out =
        compileAnvil(designs::anvilTlbSource(), {.top = "tlb"});
    CompileOutput ptw_out =
        compileAnvil(designs::anvilPtwSource(), {.top = "ptw"});
    if (!tlb_out.ok || !ptw_out.ok) {
        printf("%s%s\n", tlb_out.diags.render().c_str(),
               ptw_out.diags.render().c_str());
        return 1;
    }
    rtl::Sim tlb(tlb_out.module("tlb"));
    rtl::Sim ptw(ptw_out.module("ptw"));

    // Page tables: vpn {1,2,3} -> ppn 0x77 through three levels.
    PtMemory mem;
    mem.pte[4096 + 8] = (2ull << 10) | 1;            // L1 pointer
    mem.pte[(2ull << 12) + 16] = (3ull << 10) | 1;   // L2 pointer
    mem.pte[(3ull << 12) + 24] = (0x77ull << 10) | 0xf;  // leaf

    uint64_t vpn = (1ull << 18) | (2ull << 9) | 3;

    auto tlb_lookup = [&](uint64_t v, int *lat) -> std::pair<bool,
                                                             uint64_t> {
        tlb.setInput("io_req_data", BitVec(32, v));
        tlb.setInput("io_req_valid", 1);
        tlb.setInput("io_res_ack", 1);
        int start = static_cast<int>(tlb.cycle());
        for (int i = 0; i < 50; i++) {
            bool r = tlb.peek("io_res_valid").any();
            uint64_t d = tlb.peek("io_res_data").toUint64();
            tlb.step();
            tlb.setInput("io_req_valid", 0);
            if (r) {
                *lat = static_cast<int>(tlb.cycle()) - 1 - start;
                tlb.setInput("io_res_ack", 0);
                tlb.step();
                return {(d >> 32) & 1, d & 0xffffffff};
            }
        }
        *lat = -1;
        return {false, 0};
    };

    auto walk = [&](uint64_t v, int *lat) -> uint64_t {
        ptw.setInput("cpu_req_data", BitVec(27, v));
        ptw.setInput("cpu_req_valid", 1);
        ptw.setInput("cpu_res_ack", 1);
        int start = static_cast<int>(ptw.cycle());
        for (int i = 0; i < 300; i++) {
            mem.drive(ptw);
            bool r = ptw.peek("cpu_res_valid").any();
            uint64_t d = ptw.peek("cpu_res_data").toUint64();
            ptw.step();
            ptw.setInput("cpu_req_valid", 0);
            if (r) {
                *lat = static_cast<int>(ptw.cycle()) - 1 - start;
                return d;
            }
        }
        *lat = -1;
        return 0;
    };

    printf("translate vpn 0x%llx:\n", (unsigned long long)vpn);
    int lat = 0;
    auto [hit, ppn] = tlb_lookup(vpn, &lat);
    printf("  TLB lookup: %s (%d cycles)\n", hit ? "hit" : "miss", lat);

    int walk_lat = 0;
    uint64_t pte = walk(vpn, &walk_lat);
    uint64_t walked_ppn = pte >> 10;
    printf("  PTW walk: ppn=0x%llx (%d cycles, three levels x "
           "3-cycle memory)\n", (unsigned long long)walked_ppn,
           walk_lat);

    // Refill the TLB.
    tlb.setInput("io_upd_data", BitVec(64, (vpn << 32) | walked_ppn));
    tlb.setInput("io_upd_valid", 1);
    tlb.step();
    tlb.setInput("io_upd_valid", 0);

    auto [hit2, ppn2] = tlb_lookup(vpn, &lat);
    printf("  after refill: %s ppn=0x%llx (%d cycles)\n",
           hit2 ? "hit" : "miss", (unsigned long long)ppn2, lat);
    printf("\n=> same interface, latencies 0 vs %d cycles: the "
           "dynamic timing\n   contract [req, req->res) covers both "
           "without a worst-case bound.\n", walk_lat);
    return hit2 && ppn2 == walked_ppn ? 0 : 1;
}
