/**
 * @file
 * Composing Anvil modules: an AXI-Lite "crossbar slice" built from
 * the compiled demux (1 master -> 8 slaves), exercised with writes
 * and reads routed by the address's top bits.
 *
 * The traffic is driven by the reusable AXI master BFM
 * (tb/axi_bfm.h) with scripted transactions against memory-model
 * slave agents — the same agents the randomized regression benches
 * use.
 *
 * Build & run:  ./build/example_axi_crossbar
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "tb/axi_bfm.h"
#include "tb/testbench.h"

using namespace anvil;

int
main()
{
    CompileOutput out = compileAnvil(designs::anvilAxiDemuxSource(),
                                     {.top = "axi_demux"});
    if (!out.ok) {
        printf("%s\n", out.diags.render().c_str());
        return 1;
    }
    printf("AXI-Lite demux compiled: %zu ports, %zu registers\n\n",
           out.module("axi_demux")->ports.size(),
           out.module("axi_demux")->regs.size());

    tb::Testbench bench(out.module("axi_demux"), /*seed=*/2026);

    // Memory-model slaves: writes land in a shared map keyed by
    // address, reads echo the stored word.
    std::map<uint64_t, uint64_t> mem;
    for (int i = 0; i < 8; i++) {
        tb::AxiSlaveConfig cfg;
        cfg.prefix = "s" + std::to_string(i);
        cfg.write_resp = [&mem](uint64_t addr, uint64_t data) {
            mem[addr] = data;
            return 0;   // OKAY
        };
        cfg.read_resp = [&mem](uint64_t addr) { return mem[addr]; };
        // The compiled demux completes AW and W handshakes on
        // separate cycles.
        cfg.joint_write_accept = false;
        tb::AxiLiteSlaveBfm::attach(bench, cfg);
    }

    // A scripted master: one write per slave, then read each back.
    tb::AxiMasterConfig mcfg;
    mcfg.random_traffic = false;
    tb::AxiMasterBfm &master = tb::AxiMasterBfm::attach(bench, mcfg);

    printf("writing 0x111*i to slave i (addr top bits select)...\n");
    for (uint64_t i = 0; i < 8; i++)
        master.queueWrite((i << 29) | 0x10, 0x111 * i);
    bench.run(400);

    printf("reading back:\n");
    std::vector<uint64_t> got;
    for (uint64_t i = 0; i < 8; i++)
        master.queueRead((i << 29) | 0x10,
                         [&got](const BitVec &v) {
                             got.push_back(v.toUint64());
                         });
    bench.run(400);

    bool ok = got.size() == 8;
    for (uint64_t i = 0; i < got.size(); i++) {
        bool hit = got[i] == 0x111 * i;
        ok = ok && hit;
        printf("  slave %llu -> 0x%llx %s\n", (unsigned long long)i,
               (unsigned long long)got[i],
               hit ? "(ok)" : "(MISMATCH)");
    }
    printf("\n%llu writes, %llu reads in %llu cycles\n",
           (unsigned long long)master.writesDone(),
           (unsigned long long)master.readsDone(),
           (unsigned long long)bench.sim().cycle());
    return ok ? 0 : 1;
}
