/**
 * @file
 * Composing Anvil modules: an AXI-Lite "crossbar slice" built from
 * the compiled demux (1 master -> 8 slaves), exercised with writes
 * and reads routed by the address's top bits.
 *
 * Build & run:  ./build/examples/axi_crossbar
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"

using namespace anvil;

int
main()
{
    CompileOutput out = compileAnvil(designs::anvilAxiDemuxSource(),
                                     {.top = "axi_demux"});
    if (!out.ok) {
        printf("%s\n", out.diags.render().c_str());
        return 1;
    }
    printf("AXI-Lite demux compiled: %zu ports, %zu registers\n\n",
           out.module("axi_demux")->ports.size(),
           out.module("axi_demux")->regs.size());

    rtl::Sim sim(out.module("axi_demux"));

    // Simple memory-mapped slaves: each acks immediately and echoes
    // addr+data in the read payload.
    uint64_t slave_mem[8] = {0};
    auto drive_slaves = [&]() {
        for (int i = 0; i < 8; i++) {
            std::string p = "s" + std::to_string(i);
            sim.setInput(p + "_aw_ack", 1);
            sim.setInput(p + "_w_ack", 1);
            sim.setInput(p + "_ar_ack", 1);
            if (sim.peek(p + "_aw_valid").any() &&
                sim.peek(p + "_w_valid").any()) {
                slave_mem[i] = sim.peek(p + "_w_data").toUint64();
            }
            sim.setInput(p + "_b_valid", 1);
            sim.setInput(p + "_b_data", 1);
            sim.setInput(p + "_r_valid", 1);
            sim.setInput(p + "_r_data", BitVec(33, slave_mem[i]));
        }
    };

    auto write = [&](uint64_t addr, uint64_t data) {
        sim.setInput("m_aw_data", BitVec(32, addr));
        sim.setInput("m_aw_valid", 1);
        sim.setInput("m_w_data", BitVec(32, data));
        sim.setInput("m_w_valid", 1);
        sim.setInput("m_b_ack", 1);
        for (int i = 0; i < 50; i++) {
            drive_slaves();
            bool b = sim.peek("m_b_valid").any();
            sim.step();
            if (b)
                break;
        }
        sim.setInput("m_aw_valid", 0);
        sim.setInput("m_w_valid", 0);
        sim.step();
    };
    auto read = [&](uint64_t addr) -> uint64_t {
        sim.setInput("m_ar_data", BitVec(32, addr));
        sim.setInput("m_ar_valid", 1);
        sim.setInput("m_r_ack", 1);
        uint64_t got = ~0ull;
        for (int i = 0; i < 50; i++) {
            drive_slaves();
            bool r = sim.peek("m_r_valid").any();
            uint64_t d = sim.peek("m_r_data").toUint64();
            sim.step();
            sim.setInput("m_ar_valid", 0);
            if (r) {
                got = d;
                break;
            }
        }
        sim.setInput("m_r_ack", 0);
        sim.step();
        return got;
    };

    printf("writing 0x111*i to slave i (addr top bits select)...\n");
    for (uint64_t i = 0; i < 8; i++)
        write((i << 29) | 0x10, 0x111 * i);
    printf("reading back:\n");
    for (uint64_t i = 0; i < 8; i++) {
        uint64_t v = read((i << 29) | 0x10);
        printf("  slave %llu -> 0x%llx %s\n", (unsigned long long)i,
               (unsigned long long)v,
               v == 0x111 * i ? "(ok)" : "(MISMATCH)");
    }
    return 0;
}
