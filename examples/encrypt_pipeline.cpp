/**
 * @file
 * The Fig. 6 Encrypt process: first the paper's version with its
 * three timing violations and the compiler's explanation, then a
 * repaired version that registers the noise and spaces the response
 * sends, which compiles and runs.
 *
 * Build & run:  ./build/examples/encrypt_pipeline
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"

using namespace anvil;

int
main()
{
    printf("=== The paper's Encrypt (three violations) ===\n");
    CompileOutput bad = compileAnvil(designs::anvilEncryptSource());
    printf("%s\n", bad.diags.render().c_str());

    printf("=== A repaired Encrypt ===\n");
    const char *fixed = R"(
chan encrypt_ch {
    left enc_req : (logic[8]@enc_res),
    right enc_res : (logic[8]@enc_req)
}
chan rng_ch {
    left rng_req : (logic[8]@#1),
    right rng_res : (logic[8]@#2)
}

proc encrypt(ch1 : left encrypt_ch, ch2 : left rng_ch) {
    reg noise_q : logic[8];
    reg rd1_ctext : logic[8];
    reg r2_key : logic[8];
    loop {
        let ptext = recv ch1.enc_req;
        // Register the one-cycle noise the moment it arrives, in its
        // own parallel branch (waiting for ptext first would let the
        // noise expire - the checker rejects that version).
        let nq = { let noise = recv ch2.rng_req >>
                   set noise_q := noise };
        let r1_key = 25;
        ptext >> nq >>
        if ptext != 0 {
            set rd1_ctext := (ptext ^ r1_key) + *noise_q
        } else {
            set rd1_ctext := ptext
        };
        cycle 1 >>
        set r2_key := r1_key ^ *noise_q >>
        send ch2.rng_res (*r2_key) >>
        cycle 2 >>                            // rng_res lives @#2
        send ch1.enc_res (*rd1_ctext ^ *r2_key) >>
        cycle 1
    }
}
)";
    CompileOutput good = compileAnvil(fixed);
    printf("type check: %s\n", good.ok ? "SAFE" : "UNSAFE");
    if (!good.ok) {
        printf("%s\n", good.diags.render().c_str());
        return 1;
    }

    printf("\n=== Driving one encryption ===\n");
    rtl::Sim sim(good.module("encrypt"));
    sim.setInput("ch1_enc_req_data", 0x5a);
    sim.setInput("ch1_enc_req_valid", 1);
    sim.setInput("ch2_rng_req_data", 0x3c);
    sim.setInput("ch2_rng_req_valid", 1);
    sim.setInput("ch1_enc_res_ack", 1);
    sim.setInput("ch2_rng_res_ack", 1);
    for (int i = 0; i < 20; i++) {
        if (sim.peek("ch1_enc_res_valid").any()) {
            printf("plaintext 0x5a + noise 0x3c -> ciphertext 0x%llx "
                   "(cycle %llu)\n",
                   (unsigned long long)
                       sim.peek("ch1_enc_res_data").toUint64(),
                   (unsigned long long)sim.cycle());
            break;
        }
        sim.step();
        sim.setInput("ch1_enc_req_valid", 0);
        sim.setInput("ch2_rng_req_valid", 0);
    }
    return 0;
}
