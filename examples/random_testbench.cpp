/**
 * @file
 * Coverage-driven testbench walkthrough: the Anvil-compiled FIFO
 * driven by constrained-random stimulus, checked by an in-order
 * scoreboard, measured by the coverage engine, and dumped as a VCD
 * that any waveform viewer opens.
 *
 * Build & run:  ./build/example_random_testbench
 * Then e.g.:    gtkwave fifo_random.vcd
 */

#include <cstdio>
#include <fstream>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "tb/testbench.h"

using namespace anvil;

int
main()
{
    CompileOutput out = compileAnvil(designs::anvilFifoSource(),
                                     {.top = "fifo"});
    if (!out.ok) {
        printf("%s\n", out.diags.render().c_str());
        return 1;
    }

    tb::Testbench bench(out.module("fifo"), /*seed=*/2026);

    // Constrained-random stimulus: random payloads, enq offered 70%
    // of cycles, deq ready 50% of cycles.
    bench.driveRandom("inp_enq_data");
    tb::FieldSpec one;
    one.width = 1;
    one.min = one.max = 1;
    tb::RandomSpec enq;
    enq.fields = {one};
    enq.active_pct = 70;
    bench.driveRandom("inp_enq_valid", enq);
    tb::RandomSpec deq = enq;
    deq.active_pct = 50;
    bench.driveRandom("outp_deq_ack", deq);

    // Scoreboard: everything that goes in comes out, in order.
    tb::Scoreboard &sb = bench.addScoreboard("fifo-order");
    bench.check("fifo", [&sb](tb::Testbench &t) {
        rtl::Sim &s = t.sim();
        if (s.peek("inp_enq_valid").any() &&
            s.peek("inp_enq_ack").any())
            sb.expect(s.peek("inp_enq_data"));
        if (s.peek("outp_deq_valid").any() &&
            s.peek("outp_deq_ack").any())
            sb.observed(s.cycle(), s.peek("outp_deq_data"));
    });

    // Coverage: what did this stimulus actually exercise?
    tb::Coverage &cov = bench.coverage();
    cov.addCover("enq-fire", rtl::ref("inp_enq_valid", 1) &
                                 rtl::ref("inp_enq_ack", 1));
    cov.addCover("deq-fire", rtl::ref("outp_deq_valid", 1) &
                                 rtl::ref("outp_deq_ack", 1));

    // Waves for a real viewer.
    std::ofstream vcd("fifo_random.vcd");
    bench.attachVcd(vcd);

    tb::TbResult r = bench.run(2000);
    printf("%s\n", r.summary().c_str());
    printf("scoreboard: %llu matched, %zu still queued\n",
           (unsigned long long)sb.matched(), sb.pending());
    printf("\n%s", cov.report().c_str());
    printf("\nsummary json: %s\n", cov.summaryJson().c_str());
    printf("\nwrote fifo_random.vcd\n");
    return r.ok() ? 0 : 1;
}
