/**
 * @file
 * Memory-system walkthrough (the paper's running example): the unsafe
 * client is rejected with the exact errors of Fig. 5; the safe client
 * under the dynamic cache contract compiles and runs against the
 * hit/miss cache, showing per-access latencies.
 *
 * Build & run:  ./build/examples/memory_system
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"

using namespace anvil;

int
main()
{
    printf("=== 1. The unsafe client (static memory contract) ===\n");
    CompileOutput bad = compileAnvil(designs::anvilTopUnsafeSource());
    printf("%s\n", bad.diags.render().c_str());

    printf("=== 2. The safe client (dynamic cache contract) ===\n");
    CompileOutput good = compileAnvil(designs::anvilTopSafeSource());
    printf("type check: %s\n\n", good.ok ? "SAFE" : "UNSAFE");
    if (!good.ok)
        return 1;

    printf("=== 3. Running the safe client against the cache ===\n");
    // Wire the compiled client to the hit/miss cache demo by copying
    // port values each cycle (client <-> cache).
    rtl::Sim client(good.module("top_safe"));
    rtl::Sim cache(designs::buildCacheDemoBaseline());

    int responses = 0;
    uint64_t last_resp_cycle = 0;
    printf("access latencies (miss = 3, hit = 1): ");
    for (int cyc = 0; cyc < 64 && responses < 12; cyc++) {
        // Cache outputs are registered; feed them to the client.
        client.setInput("mem_req_ack", cache.peek("io_req_ack"));
        client.setInput("mem_res_valid", cache.peek("io_res_valid"));
        client.setInput("mem_res_data", cache.peek("io_res_data"));
        // Client outputs feed the cache.
        cache.setInput("io_req_valid", client.peek("mem_req_valid"));
        cache.setInput("io_req_data", client.peek("mem_req_data"));
        cache.setInput("io_res_ack", client.peek("mem_res_ack"));

        bool res = cache.peek("io_res_valid").any() &&
            client.peek("mem_res_ack").any();
        client.step();
        cache.step();
        if (res) {
            responses++;
            printf("%llu ",
                   (unsigned long long)(cache.cycle() - 1 -
                                        last_resp_cycle));
            last_resp_cycle = cache.cycle() - 1;
        }
    }
    printf("\naccumulator after %d responses: 0x%llx\n", responses,
           (unsigned long long)client.peek("acc").toUint64());
    printf("(the address register advances only after each response "
           "arrives,\n exactly the behaviour the [req, req->res) "
           "contract promises)\n");
    return 0;
}
